module Net = Cc_clique.Net
module Matmul = Cc_clique.Matmul
module Mat = Cc_linalg.Mat
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Placement = Cc_matching.Placement

let log_src = Logs.Src.create "cc.phase_walk" ~doc:"per-level walk filling"

module Log = (val Logs.src_log log_src : Logs.LOG)

type matching_mode = Resample of { mcmc_steps : int option } | Magical

type stats = {
  levels : int;
  checks : int;
  midpoints_placed : int;
  matchings_exact : int;
  matchings_mcmc : int;
}

let next_pow2 x =
  let rec go p e = if p >= x then (p, e) else go (2 * p) (e + 1) in
  go 1 0

let max_materialized = 2_000_000

(* Mutable counters threaded through a run. *)
type counters = {
  mutable c_checks : int;
  mutable c_midpoints : int;
  mutable c_exact : int;
  mutable c_mcmc : int;
}

(* Pair-class bookkeeping for one level: walk.(i), walk.(i+1) for
   i = 0..len-2 are the (start,end) pairs. *)
type level_pairs = {
  classes : (int * int) array; (* class index -> (p, q) *)
  class_of : int array; (* pair position i -> class index *)
  rank : int array; (* pair position i -> occurrence rank within its class *)
  counts : int array; (* class index -> total occurrences *)
}

let index_pairs walk =
  let l = Array.length walk - 1 in
  let table = Hashtbl.create (2 * l) in
  let classes = ref [] in
  let next_class = ref 0 in
  let class_of = Array.make l 0 in
  let rank = Array.make l 0 in
  let count_so_far = Hashtbl.create (2 * l) in
  for i = 0 to l - 1 do
    let key = (walk.(i), walk.(i + 1)) in
    let k =
      match Hashtbl.find_opt table key with
      | Some k -> k
      | None ->
          let k = !next_class in
          Hashtbl.add table key k;
          classes := key :: !classes;
          incr next_class;
          k
    in
    class_of.(i) <- k;
    let r = Option.value ~default:0 (Hashtbl.find_opt count_so_far k) in
    rank.(i) <- r;
    Hashtbl.replace count_so_far k (r + 1)
  done;
  let classes = Array.of_list (List.rev !classes) in
  let counts = Array.make (Array.length classes) 0 in
  Array.iter (fun k -> counts.(k) <- counts.(k) + 1) class_of;
  { classes; class_of; rank; counts }

(* Book a routed pattern given per-machine word loads (avoids materializing
   huge packet lists for dense request patterns). *)
let book_loads net ~label ~sent ~recv ~messages =
  let n = Net.n net in
  let load = ref 0 in
  for i = 0 to n - 1 do
    load := max !load (max sent.(i) recv.(i))
  done;
  if !load > 0 then begin
    Net.charge net ~label (Float.of_int ((!load + n - 1) / n));
    ignore messages
  end

let run net prng ~backend ?bits ?powers_slot ~trans ~machine_of ~start ~rho
    ~target_len ~matching () =
  let s_count = Mat.rows trans in
  if Mat.cols trans <> s_count then invalid_arg "Phase_walk.run: trans not square";
  if rho < 2 then invalid_arg "Phase_walk.run: rho < 2";
  if target_len < 2 then invalid_arg "Phase_walk.run: target_len < 2";
  if start < 0 || start >= s_count then invalid_arg "Phase_walk.run: bad start";
  let n = Net.n net in
  let ew = Net.entry_words net in
  let _, levels = next_pow2 target_len in
  let counters = { c_checks = 0; c_midpoints = 0; c_exact = 0; c_mcmc = 0 } in
  (* Initialization Step (Algorithm 1): distributed power table + endpoint.
     When the caller passes a plan's [powers_slot], a filled slot replays the
     table's bookings without recomputing it, and an empty slot is filled for
     the next draw; either way the net sees the same events. *)
  let powers =
    match powers_slot with
    | Some ({ contents = Some cached } as _slot) ->
        Matmul.power_table net backend ?bits ~reuse:cached trans ~levels
    | Some ({ contents = None } as slot) ->
        let t = Matmul.power_table net backend ?bits trans ~levels in
        slot := Some t;
        t
    | None -> Matmul.power_table net backend ?bits trans ~levels
  in
  let leader = machine_of start in
  let degenerate () =
    failwith
      "Phase_walk: truncated transition probabilities degenerated to zero \
       (fractional bits far below the Lemma 3 budget)"
  in
  let endpoint =
    try Dist.sample_weights (Mat.row powers.(levels) start) prng
    with Invalid_argument _ -> degenerate ()
  in
  Net.charge net ~label:"init endpoint" 1.0;

  (* One level: walk with entries spaced 2^gap apart -> entries spaced
     2^(gap-1), truncated at the rho-th distinct vertex. *)
  let level walk gap =
    let half = powers.(gap - 1) in
    let l = Array.length walk - 1 in
    let pairs = index_pairs walk in
    let nclasses = Array.length pairs.classes in
    let pair_machine k = k mod n in
    (* --- Algorithm 2: midpoint requests + distribution acquisition. --- *)
    (* M sends each pair machine its count (O(1) words each). *)
    let sent = Array.make n 0 and recv = Array.make n 0 in
    for k = 0 to nclasses - 1 do
      sent.(leader) <- sent.(leader) + 3;
      recv.(pair_machine k) <- recv.(pair_machine k) + 3
    done;
    book_loads net ~label:"midpoint counts" ~sent ~recv ~messages:nclasses;
    (* Every machine j sends the pair machine its Formula 1 factor. *)
    let sent = Array.make n 0 and recv = Array.make n 0 in
    for k = 0 to nclasses - 1 do
      for j = 0 to s_count - 1 do
        sent.(machine_of j) <- sent.(machine_of j) + ew;
        recv.(pair_machine k) <- recv.(pair_machine k) + ew
      done
    done;
    book_loads net ~label:"midpoint distributions" ~sent ~recv
      ~messages:(nclasses * s_count);
    (* Pair machines sample their midpoint sequences Pi_{p,q}. *)
    let pi =
      Array.init nclasses (fun k ->
          let p, q = pairs.classes.(k) in
          let weights =
            Array.init s_count (fun j -> Mat.get half p j *. Mat.get half j q)
          in
          let d =
            try Dist.of_weights weights
            with Invalid_argument _ -> degenerate ()
          in
          Array.init pairs.counts.(k) (fun _ -> Dist.sample d prng))
    in
    (* The "magical" filled walk: position 2i is walk.(i), position 2i+1 is
       pi.(class).(rank). Used only as the machines would: for Check queries,
       the final midpoint, and the multiset. *)
    let magical pos =
      if pos land 1 = 0 then walk.(pos / 2)
      else
        let i = (pos - 1) / 2 in
        pi.(pairs.class_of.(i)).(pairs.rank.(i))
    in
    (* --- Algorithm 3: Check(l') — is l' <= t? --- *)
    let check l' =
      counters.c_checks <- counters.c_checks + 1;
      let sent = Array.make n 0 and recv = Array.make n 0 in
      (* Step 1: M sends c_{p,q}(l') to pair machines. *)
      for k = 0 to nclasses - 1 do
        sent.(leader) <- sent.(leader) + 1;
        recv.(pair_machine k) <- recv.(pair_machine k) + 1
      done;
      (* Prefix counts per class: midpoints at odd positions <= l'. (Guard
         l' = 0 explicitly: OCaml truncates (-1)/2 to 0, which would wrongly
         count pair 0.) *)
      let c = Array.make nclasses 0 in
      let i_max_mid = if l' < 1 then -1 else min (l - 1) ((l' - 1) / 2) in
      for i = 0 to i_max_mid do
        c.(pairs.class_of.(i)) <- c.(pairs.class_of.(i)) + 1
      done;
      (* Step 2: a(p,q,v,l') flows to machine v; step 3: sums flow to M. *)
      let a = Hashtbl.create 64 in
      let seen_kv = Hashtbl.create 64 in
      for k = 0 to nclasses - 1 do
        for r = 0 to c.(k) - 1 do
          let v = pi.(k).(r) in
          Hashtbl.replace a v (1 + Option.value ~default:0 (Hashtbl.find_opt a v));
          if not (Hashtbl.mem seen_kv (k, v)) then begin
            Hashtbl.add seen_kv (k, v) ();
            sent.(pair_machine k) <- sent.(pair_machine k) + 2;
            recv.(machine_of v) <- recv.(machine_of v) + 2
          end
        done
      done;
      Hashtbl.iter
        (fun v _ ->
          sent.(machine_of v) <- sent.(machine_of v) + 2;
          recv.(leader) <- recv.(leader) + 2)
        a;
      (* m(l') query. *)
      sent.(leader) <- sent.(leader) + 2;
      recv.(leader) <- recv.(leader) + 2;
      book_loads net ~label:"binary-search check" ~sent ~recv
        ~messages:(nclasses + Hashtbl.length seen_kv + Hashtbl.length a + 2);
      (* Step 4: d = distinct vertices in the prefix. *)
      let distinct = Hashtbl.copy a in
      for i = 0 to l' / 2 do
        if not (Hashtbl.mem distinct walk.(i)) then Hashtbl.add distinct walk.(i) 0
      done;
      let d = Hashtbl.length distinct in
      if d > rho then false
      else begin
        (* Step 6: o = occurrences of m(l') in the prefix. *)
        let v = magical l' in
        let o = ref (Option.value ~default:0 (Hashtbl.find_opt a v)) in
        for i = 0 to l' / 2 do
          if walk.(i) = v then incr o
        done;
        d < rho || !o = 1
      end
    in
    (* Binary search for the largest l' with Check(l') = true. Check 0 is
       trivially true (one distinct vertex, rho >= 2). *)
    let lo = ref 0 and hi = ref (2 * l) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if check mid then lo := mid else hi := mid - 1
    done;
    let t = !lo in
    (* --- Midpoint Placement. --- *)
    let new_walk = Array.make (t + 1) (-1) in
    let n_even = (t / 2) + 1 in
    for i = 0 to n_even - 1 do
      new_walk.(2 * i) <- walk.(i)
    done;
    let final_is_midpoint = t land 1 = 1 in
    if final_is_midpoint then begin
      (* The final midpoint is queried and placed exactly. *)
      new_walk.(t) <- magical t;
      Net.charge net ~label:"final midpoint query" 1.0
    end;
    (* Positions to fill by matching: odd positions strictly below t. *)
    let match_positions =
      Array.of_list
        (List.filter (fun pos -> pos < t) (List.init ((t + 1) / 2) (fun i -> (2 * i) + 1)))
    in
    let k_match = Array.length match_positions in
    counters.c_midpoints <- counters.c_midpoints + k_match + (if final_is_midpoint then 1 else 0);
    if k_match > 0 then begin
      (* M receives the multiset (2 words per distinct identity, combinable)
         and the P^(gap-1) submatrix on the involved vertices (O(n) words). *)
      let involved = Hashtbl.create 64 in
      for pos = 0 to t do
        Hashtbl.replace involved (magical pos) ()
      done;
      let sub = Hashtbl.length involved in
      Net.exchange net ~label:"multiset+submatrix gather"
        (Hashtbl.fold
           (fun v _ acc ->
             { Net.src = machine_of v; dst = leader; words = (sub * ew) + 2 } :: acc)
           involved []);
      match matching with
      | Magical ->
          Array.iter (fun pos -> new_walk.(pos) <- magical pos) match_positions
      | Resample { mcmc_steps } ->
          (* Instances: the multiset of midpoints in the truncated prefix,
             excluding the final midpoint; the magical assignment orders them
             per position, giving a feasible MCMC start. The exact DP ignores
             the ordering (identities are exchangeable). *)
          let identities = Array.map magical match_positions in
          let positions =
            Array.map
              (fun pos ->
                let i = (pos - 1) / 2 in
                (walk.(i), walk.(i + 1)))
              match_positions
          in
          let instance =
            Placement.build ~identities ~positions ~weight:(fun ~v ~p ~q ->
                Mat.get half p v *. Mat.get half v q)
          in
          let init = Array.init k_match (fun j -> j) in
          let dp_attempt () =
            (* Exact DP only while the instance is genuinely small; the
               budget keeps a single placement cheap relative to the level. *)
            if k_match > 512 then invalid_arg "placement too large for DP"
            else Placement.sample_exact ~max_states:50_000 prng instance
          in
          let sigma =
            match dp_attempt () with
            | sigma ->
                counters.c_exact <- counters.c_exact + 1;
                sigma
            | exception Invalid_argument _ ->
                counters.c_mcmc <- counters.c_mcmc + 1;
                let steps =
                  match mcmc_steps with
                  | Some s -> s
                  | None ->
                      let kf = Float.of_int k_match in
                      int_of_float
                        (Float.ceil (60.0 *. kf *. Float.max 1.0 (Float.log kf)))
                in
                Cc_matching.Sampler.mcmc ~init prng instance.Placement.weights
                  ~steps
          in
          Array.iteri
            (fun j pos -> new_walk.(pos) <- identities.(sigma.(j)))
            match_positions
    end;
    new_walk
  in
  let walk = ref [| start; endpoint |] in
  for gap = levels downto 1 do
    if Array.length !walk > max_materialized then
      failwith "Phase_walk.run: materialized walk exceeds cap";
    Log.debug (fun m -> m "level gap=2^%d, %d entries" gap (Array.length !walk));
    Cc_obs.Trace.with_span "phase_walk.level"
      ~args:
        [
          ("gap", string_of_int gap);
          ("entries", string_of_int (Array.length !walk));
        ]
      (fun () -> walk := level !walk gap)
  done;
  Cc_obs.Metrics.incr ~by:counters.c_checks "phase_walk.checks";
  Cc_obs.Metrics.incr ~by:counters.c_midpoints "phase_walk.midpoints";
  Cc_obs.Metrics.incr ~by:counters.c_exact "phase_walk.matchings_exact";
  Cc_obs.Metrics.incr ~by:counters.c_mcmc "phase_walk.matchings_mcmc";
  ( !walk,
    {
      levels;
      checks = counters.c_checks;
      midpoints_placed = counters.c_midpoints;
      matchings_exact = counters.c_exact;
      matchings_mcmc = counters.c_mcmc;
    } )
