module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Mat = Cc_linalg.Mat
module Schur = Cc_schur.Schur
module Shortcut = Cc_schur.Shortcut
module Topdown = Cc_walks.Topdown

type result = { tree : Tree.t; phases : int; walk_total : int }

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

let sanitize m =
  Mat.normalize_rows
    (Mat.init ~rows:(Mat.rows m) ~cols:(Mat.cols m) (fun i j ->
         Float.max 0.0 (Mat.get m i j)))

(* ------------------------------------------------------------------ *)
(* Prepared plans: mirrors Sampler's prepare/draw split for the
   sequential reference. Everything here is pure compute, so memo hits
   and misses are indistinguishable to the caller except in time — the
   prng stream is untouched by caching. *)

type phase_entry = {
  e_q : Mat.t;
  e_trans : Mat.t;
  e_powers : Mat.t array option ref; (* power table, filled on first walk *)
}

type plan = {
  plan_graph : Graph.t;
  plan_rho : int;
  plan_target_len : int;
  plan_lazy_walk : bool;
  plan_trans1 : Mat.t;
  plan_powers1 : Mat.t array;
  plan_memo : (string, phase_entry) Hashtbl.t;
  mutable plan_draws : int;
}

(* Bounded like Sampler's memo: overflow recomputes instead of retaining. *)
let memo_cap = 128

let prepare ?rho ?target_len ?(lazy_walk = true) g =
  if not (Graph.is_connected g) then
    invalid_arg "Sequential.prepare: graph must be connected";
  let n = Graph.n g in
  let rho =
    match rho with
    | Some r -> max 2 (min r n)
    | None -> max 2 (int_of_float (Float.ceil (sqrt (Float.of_int n))))
  in
  let target_len =
    match target_len with
    | Some l -> next_pow2 (max 2 l)
    | None ->
        let lg = max 1 (int_of_float (Float.ceil (Float.log2 (Float.of_int n)))) in
        next_pow2 (max 2 (n * n * n * lg))
  in
  let trans1 = Graph.transition_matrix g in
  let trans1 = if lazy_walk then Mat.half_lazy trans1 else trans1 in
  let powers1 =
    Mat.power_table trans1 ~max_exp:(Topdown.levels_for ~len:target_len)
  in
  {
    plan_graph = g;
    plan_rho = rho;
    plan_target_len = target_len;
    plan_lazy_walk = lazy_walk;
    plan_trans1 = trans1;
    plan_powers1 = powers1;
    plan_memo = Hashtbl.create 32;
    plan_draws = 0;
  }

let memo_key s =
  let buf = Buffer.create (4 * Array.length s) in
  Array.iter
    (fun v ->
      Buffer.add_string buf (string_of_int v);
      Buffer.add_char buf ',')
    s;
  Buffer.contents buf

let phase_entry plan ~s =
  let key = memo_key s in
  match Hashtbl.find_opt plan.plan_memo key with
  | Some e -> e
  | None ->
      let g = plan.plan_graph in
      let in_s = Schur.members ~n:(Graph.n g) ~s in
      let q = Shortcut.exact g ~in_s in
      let trans =
        if Array.length s = 2 then q (* unused: the phase is a forced step *)
        else begin
          let t = sanitize (Schur.transition_via_shortcut g q ~s) in
          if plan.plan_lazy_walk then Mat.half_lazy t else t
        end
      in
      let e = { e_q = q; e_trans = trans; e_powers = ref None } in
      if Hashtbl.length plan.plan_memo < memo_cap then
        Hashtbl.add plan.plan_memo key e;
      e

let draw plan prng =
  let g = plan.plan_graph in
  let n = Graph.n g in
  let rho = plan.plan_rho in
  let target_len = plan.plan_target_len in
  plan.plan_draws <- plan.plan_draws + 1;
  let visited = Array.make n false in
  visited.(0) <- true;
  let remaining = ref (n - 1) in
  let tree_edges = ref [] in
  let current = ref 0 in
  let phases = ref 0 in
  let walk_total = ref 0 in
  let claim u v =
    visited.(v) <- true;
    decr remaining;
    tree_edges := (u, v) :: !tree_edges
  in
  while !remaining > 0 do
    incr phases;
    if !phases = 1 then begin
      let walk =
        Topdown.sample_truncated_matrix prng ~trans:plan.plan_trans1 ~start:0
          ~target_len ~rho:(min rho n) ~powers:plan.plan_powers1 ()
      in
      walk_total := !walk_total + Array.length walk - 1;
      Array.iteri
        (fun idx v -> if idx > 0 && not visited.(v) then claim walk.(idx - 1) v)
        walk;
      current := walk.(Array.length walk - 1)
    end
    else begin
      let s =
        Array.of_list
          (List.filter
             (fun v -> v = !current || not visited.(v))
             (List.init n (fun v -> v)))
      in
      let in_s = Schur.members ~n ~s in
      let entry = phase_entry plan ~s in
      let q = entry.e_q in
      let claim_via_shortcut prev v =
        let weights = Shortcut.first_visit_weights g q ~in_s ~prev ~target:v in
        let idx = Dist.sample_weights (Array.map snd weights) prng in
        claim (fst weights.(idx)) v
      in
      if Array.length s = 2 then begin
        let v = if s.(0) = !current then s.(1) else s.(0) in
        claim_via_shortcut !current v;
        walk_total := !walk_total + 1;
        current := v
      end
      else begin
        let trans = entry.e_trans in
        let powers =
          match !(entry.e_powers) with
          | Some p -> p
          | None ->
              let p =
                Mat.power_table trans
                  ~max_exp:(Topdown.levels_for ~len:target_len)
              in
              entry.e_powers := Some p;
              p
        in
        let local_of = Hashtbl.create (Array.length s) in
        Array.iteri (fun i v -> Hashtbl.add local_of v i) s;
        let walk_local =
          Topdown.sample_truncated_matrix prng ~trans
            ~start:(Hashtbl.find local_of !current)
            ~target_len
            ~rho:(min rho (Array.length s))
            ~powers ()
        in
        walk_total := !walk_total + Array.length walk_local - 1;
        let walk = Array.map (fun i -> s.(i)) walk_local in
        Array.iteri
          (fun idx v ->
            if idx > 0 && not visited.(v) then claim_via_shortcut walk.(idx - 1) v)
          walk;
        current := walk.(Array.length walk - 1)
      end
    end
  done;
  let tree = Tree.of_edges ~n !tree_edges in
  assert (Tree.is_spanning_tree g tree);
  Cc_audit.Audit.observe_sink g tree;
  { tree; phases = !phases; walk_total = !walk_total }

let sample ?rho ?target_len ?(lazy_walk = true) g prng =
  if not (Graph.is_connected g) then
    invalid_arg "Sequential.sample: graph must be connected";
  draw (prepare ?rho ?target_len ~lazy_walk g) prng

let sample_tree g prng = (sample g prng).tree
