module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Mat = Cc_linalg.Mat
module Schur = Cc_schur.Schur
module Shortcut = Cc_schur.Shortcut
module Topdown = Cc_walks.Topdown

type result = { tree : Tree.t; phases : int; walk_total : int }

let next_pow2 x =
  let rec go p = if p >= x then p else go (2 * p) in
  go 1

let sanitize m =
  Mat.normalize_rows
    (Mat.init ~rows:(Mat.rows m) ~cols:(Mat.cols m) (fun i j ->
         Float.max 0.0 (Mat.get m i j)))

let sample ?rho ?target_len ?(lazy_walk = true) g prng =
  let n = Graph.n g in
  if not (Graph.is_connected g) then
    invalid_arg "Sequential.sample: graph must be connected";
  let rho =
    match rho with
    | Some r -> max 2 (min r n)
    | None -> max 2 (int_of_float (Float.ceil (sqrt (Float.of_int n))))
  in
  let target_len =
    match target_len with
    | Some l -> next_pow2 (max 2 l)
    | None ->
        let lg = max 1 (int_of_float (Float.ceil (Float.log2 (Float.of_int n)))) in
        next_pow2 (max 2 (n * n * n * lg))
  in
  let visited = Array.make n false in
  visited.(0) <- true;
  let remaining = ref (n - 1) in
  let tree_edges = ref [] in
  let current = ref 0 in
  let phases = ref 0 in
  let walk_total = ref 0 in
  let claim u v =
    visited.(v) <- true;
    decr remaining;
    tree_edges := (u, v) :: !tree_edges
  in
  while !remaining > 0 do
    incr phases;
    if !phases = 1 then begin
      let trans = Graph.transition_matrix g in
      let trans = if lazy_walk then Mat.half_lazy trans else trans in
      let walk =
        Topdown.sample_truncated_matrix prng ~trans ~start:0 ~target_len
          ~rho:(min rho n) ()
      in
      walk_total := !walk_total + Array.length walk - 1;
      Array.iteri
        (fun idx v -> if idx > 0 && not visited.(v) then claim walk.(idx - 1) v)
        walk;
      current := walk.(Array.length walk - 1)
    end
    else begin
      let s =
        Array.of_list
          (List.filter
             (fun v -> v = !current || not visited.(v))
             (List.init n (fun v -> v)))
      in
      let in_s = Schur.members ~n ~s in
      let q = Shortcut.exact g ~in_s in
      let claim_via_shortcut prev v =
        let weights = Shortcut.first_visit_weights g q ~in_s ~prev ~target:v in
        let idx = Dist.sample_weights (Array.map snd weights) prng in
        claim (fst weights.(idx)) v
      in
      if Array.length s = 2 then begin
        let v = if s.(0) = !current then s.(1) else s.(0) in
        claim_via_shortcut !current v;
        walk_total := !walk_total + 1;
        current := v
      end
      else begin
        let trans = sanitize (Schur.transition_via_shortcut g q ~s) in
        let trans = if lazy_walk then Mat.half_lazy trans else trans in
        let local_of = Hashtbl.create (Array.length s) in
        Array.iteri (fun i v -> Hashtbl.add local_of v i) s;
        let walk_local =
          Topdown.sample_truncated_matrix prng ~trans
            ~start:(Hashtbl.find local_of !current)
            ~target_len
            ~rho:(min rho (Array.length s))
            ()
        in
        walk_total := !walk_total + Array.length walk_local - 1;
        let walk = Array.map (fun i -> s.(i)) walk_local in
        Array.iteri
          (fun idx v ->
            if idx > 0 && not visited.(v) then claim_via_shortcut walk.(idx - 1) v)
          walk;
        current := walk.(Array.length walk - 1)
      end
    end
  done;
  let tree = Tree.of_edges ~n !tree_edges in
  assert (Tree.is_spanning_tree g tree);
  Cc_audit.Audit.observe_sink g tree;
  { tree; phases = !phases; walk_total = !walk_total }

let sample_tree g prng = (sample g prng).tree
