let check_square w =
  let k = Array.length w in
  if k = 0 then invalid_arg "Permanent: empty matrix";
  Array.iter
    (fun row ->
      if Array.length row <> k then invalid_arg "Permanent: not square")
    w;
  k

(* Ryser's formula with Gray-code subset enumeration:
   perm(A) = (-1)^k sum_{S subseteq [k]} (-1)^|S| prod_i sum_{j in S} a_ij. *)
let ryser w =
  let k = check_square w in
  if k > 25 then invalid_arg "Permanent.ryser: matrix too large (k > 25)";
  let row_acc = Array.make k 0.0 in
  let total = ref 0.0 in
  let popcount = ref 0 in
  for g = 1 to (1 lsl k) - 1 do
    (* Gray code of g differs from that of g-1 in exactly bit [ctz g]. *)
    let bit = ref 0 in
    let x = ref g in
    while !x land 1 = 0 do
      incr bit;
      x := !x lsr 1
    done;
    let gray_prev = (g - 1) lxor ((g - 1) lsr 1) in
    let added = gray_prev land (1 lsl !bit) = 0 in
    let sign = if added then 1.0 else -1.0 in
    for i = 0 to k - 1 do
      row_acc.(i) <- row_acc.(i) +. (sign *. w.(i).(!bit))
    done;
    popcount := if added then !popcount + 1 else !popcount - 1;
    let prod = Array.fold_left ( *. ) 1.0 row_acc in
    let subset_sign = if (k - !popcount) land 1 = 0 then 1.0 else -1.0 in
    total := !total +. (subset_sign *. prod)
  done;
  Float.max 0.0 !total

let minor w ~skip_row ~skip_col =
  let k = check_square w in
  if k = 1 then invalid_arg "Permanent.minor: 1x1 matrix";
  Array.init (k - 1) (fun i ->
      let i' = if i >= skip_row then i + 1 else i in
      Array.init (k - 1) (fun j ->
          let j' = if j >= skip_col then j + 1 else j in
          w.(i').(j')))

let matching_weight w sigma =
  let k = check_square w in
  if Array.length sigma <> k then
    invalid_arg "Permanent.matching_weight: bad assignment length";
  let acc = ref 1.0 in
  Array.iteri (fun j i -> acc := !acc *. w.(i).(j)) sigma;
  !acc
