(** Midpoint-placement instances and a class-compressed exact sampler.

    In the Midpoint Placement step (Section 3.1.3), the leader machine M
    receives only a {e multiset} of midpoints and must place them into walk
    positions identified by (start,end) pairs, sampling a perfect matching
    with probability proportional to the product of edge weights
    [P^(d/2)[p,v] * P^(d/2)[v,q]].

    The crucial structure: the weight of edge (instance, position) depends
    only on the instance's {e identity} v and the position's {e pair} (p,q).
    Instances with equal identity are exchangeable, as are positions with
    equal pair, so a matching is determined (up to a uniform relabeling) by
    its {e contingency table} N(v, t) = how many class-v instances land on
    class-t positions, and

      P(N)  proportional to  prod_{v,t} a(v,t)^N(v,t) / N(v,t)!

    subject to the row/column margins. [sample_exact] draws N by dynamic
    programming over row classes (state = remaining column capacities) and
    then assigns labeled instances/positions uniformly within classes. This
    is {e exact} and handles instances with thousands of midpoints as long as
    the class structure is small; when the DP state space exceeds the cap the
    caller should fall back to the generic samplers in {!Sampler}. *)

type t = {
  identities : int array;  (** identity class of each instance *)
  positions : (int * int) array;  (** (start,end) pair of each position *)
  weights : float array array;
      (** [weights.(i).(j)]: instance i at position j; derived from classes *)
}

(** [build ~identities ~positions ~weight] constructs the dense instance;
    lengths must agree; weights must be nonnegative (zeros mark unreachable
    identity/position combinations). *)
val build :
  identities:int array ->
  positions:(int * int) array ->
  weight:(v:int -> p:int -> q:int -> float) ->
  t

(** [dp_states t] is the size of the DP state space
    (product over position classes of (count + 1)) — the feasibility
    predictor for [sample_exact]. *)
val dp_states : t -> int

(** [sample_exact prng t] draws a matching sigma (position j -> instance
    sigma.(j)) exactly proportional to weight, via the contingency-table DP.
    @raise Invalid_argument if [dp_states t] exceeds [max_states]
    (default 2_000_000). *)
val sample_exact : ?max_states:int -> Cc_util.Prng.t -> t -> int array

(** [sample ?mcmc_steps ?init prng t] uses [sample_exact] when feasible,
    otherwise {!Sampler.mcmc} on the dense weights, started from [init]
    (which must be a positive-weight matching when given — callers with a
    witness assignment should pass it so the chain starts feasible even when
    the support is sparse). *)
val sample :
  ?mcmc_steps:int -> ?init:int array -> Cc_util.Prng.t -> t -> int array

(** [matching_weight t sigma] is the product weight of an assignment. *)
val matching_weight : t -> int array -> float
