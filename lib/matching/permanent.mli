(** Permanents of nonnegative square matrices.

    The weight of a perfect matching is the product of its edge weights and
    the total weight of all matchings of a bipartite graph is the permanent
    of its biadjacency matrix (Section 2.3). The paper invokes the JSV FPRAS
    for the permanent; we provide an exact evaluator (Ryser's formula,
    O(2^k k)) good to k ≈ 20, which is all the exact sampler and the
    validation tests need. *)

(** [ryser w] is the permanent of the square matrix [w] (given as rows).
    @raise Invalid_argument if not square, empty, or k > 25. *)
val ryser : float array array -> float

(** [minor w ~skip_row ~skip_col] drops one row and one column — the
    self-reduction step of the JVV sampling-to-counting reduction. *)
val minor : float array array -> skip_row:int -> skip_col:int -> float array array

(** [matching_weight w sigma] is the weight of the matching assigning
    position [j] to instance [sigma.(j)]: [prod_j w.(sigma.(j)).(j)]. *)
val matching_weight : float array array -> int array -> float
