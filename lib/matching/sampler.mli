(** Sampling perfect matchings of a weighted complete bipartite graph with
    probability proportional to the product of edge weights.

    This is the black box of Section 2.3 / the Midpoint Placement step: the
    paper uses JSV's permanent FPRAS with the JVV reduction; here we provide

    - [exact]: the JVV self-reducible sampler driven by exact (Ryser)
      permanents — zero TV error, feasible to k ≈ 15. Ground truth.
    - [mcmc]: a Metropolis transposition chain on assignments, stationary
      distribution exactly proportional to matching weight (the practical
      analogue of the JSV chain). TV error decays with [steps]; validated
      against [exact] in the test suite.
    - [sample]: a dispatching front end selecting [exact] for small instances
      and [mcmc] above the cutoff.

    A matching over [k] instances and [k] positions is an [int array] [sigma]
    with [sigma.(j)] = the instance placed at position [j]. Weights are given
    row-major: [w.(instance).(position)], nonnegative (the
    placement graphs may be sparse: at fine levels most (identity, position)
    weights are zero because the identity is not reachable in delta/2 steps
    from the position's endpoints). *)

type method_ = Exact | Mcmc of { steps : int } | Auto

(** [exact prng w] draws a matching exactly proportional to weight. Zero
    weights are allowed as long as some matching has positive weight.
    @raise Invalid_argument if k > 15 or any weight is negative. *)
val exact : Cc_util.Prng.t -> float array array -> int array

(** [mcmc ?init prng w ~steps] runs the transposition Metropolis chain for
    [steps] proposals. Weights may contain zeros: zero-weight proposals are
    rejected, so the chain stays on feasible matchings; [init] (default: a
    uniform random permutation) must itself have positive weight. *)
val mcmc :
  ?init:int array -> Cc_util.Prng.t -> float array array -> steps:int -> int array

(** [default_mcmc_steps k] is the step budget [sample] uses at size [k]
    (c·k^2·log k with a generous constant). *)
val default_mcmc_steps : int -> int

(** [sample ?method_ prng w] dispatches ([Auto]: exact for k <= 12, MCMC
    otherwise). *)
val sample : ?method_:method_ -> Cc_util.Prng.t -> float array array -> int array

(** [exact_distribution w] enumerates all k! matchings of a small instance
    and returns (list of assignments, their normalized probabilities) — used
    by tests to measure the TV error of the samplers. @raise Invalid_argument
    if k > 8. *)
val exact_distribution : float array array -> int array list * float array
