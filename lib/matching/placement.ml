module Prng = Cc_util.Prng

type t = {
  identities : int array;
  positions : (int * int) array;
  weights : float array array;
}

exception Too_large

let build ~identities ~positions ~weight =
  let k = Array.length identities in
  if k = 0 then invalid_arg "Placement.build: empty instance";
  if Array.length positions <> k then
    invalid_arg "Placement.build: instance/position count mismatch";
  let weights =
    Array.map
      (fun v ->
        Array.map
          (fun (p, q) ->
            let w = weight ~v ~p ~q in
            if w < 0.0 || not (Float.is_finite w) then
              invalid_arg "Placement.build: weights must be nonnegative";
            w)
          positions)
      identities
  in
  { identities; positions; weights }

(* Distinct position classes with counts and, per class, the member position
   indexes. *)
let position_classes t =
  let table = Hashtbl.create 16 in
  Array.iteri
    (fun j pq ->
      let members = try Hashtbl.find table pq with Not_found -> [] in
      Hashtbl.replace table pq (j :: members))
    t.positions;
  Hashtbl.fold (fun pq members acc -> (pq, List.rev members) :: acc) table []
  |> List.sort compare
  |> Array.of_list

let dp_states t =
  Array.fold_left
    (fun acc (_, members) -> acc * (List.length members + 1))
    1 (position_classes t)

(* log-sum-exp of a list that may contain neg_infinity. *)
let log_sum_exp xs =
  let m = List.fold_left Float.max neg_infinity xs in
  if m = neg_infinity then neg_infinity
  else
    m
    +. Float.log
         (List.fold_left (fun acc x -> acc +. Float.exp (x -. m)) 0.0 xs)

let sample_exact ?(max_states = 2_000_000) prng t =
  Cc_obs.Metrics.incr "placement.exact_calls";
  Cc_obs.Trace.with_span "placement.exact"
    ~args:[ ("k", string_of_int (Array.length t.identities)) ]
  @@ fun () ->
  let classes = position_classes t in
  let tcount = Array.length classes in
  let capacities = Array.map (fun (_, members) -> List.length members) classes in
  let states = dp_states t in
  if states > max_states then raise Too_large;
  let k = Array.length t.identities in
  (* Class weight a(v, class t): all positions in a class share a weight
     column; take it from the first member. *)
  let log_class_weight =
    Array.init k (fun i ->
        Array.init tcount (fun c ->
            let _, members = classes.(c) in
            let w = t.weights.(i).(List.hd members) in
            if w = 0.0 then neg_infinity else Float.log w))
  in
  (* Process instances in identity order so memoization keys collapse for
     equal-identity runs; order does not affect correctness. *)
  let order = Array.init k (fun i -> i) in
  Array.sort (fun a b -> compare t.identities.(a) t.identities.(b)) order;
  (* Mixed-radix encoding of capacity vectors. *)
  let radix = Array.make tcount 1 in
  for c = 1 to tcount - 1 do
    radix.(c) <- radix.(c - 1) * (capacities.(c - 1) + 1)
  done;
  let encode caps =
    let acc = ref 0 in
    Array.iteri (fun c v -> acc := !acc + (v * radix.(c))) caps;
    !acc
  in
  let memo : (int, float) Hashtbl.t = Hashtbl.create 4096 in
  (* The memo is keyed by (layer, capacity-vector); layers multiply the state
     count, so cap the total table size to bound memory, falling back to the
     MCMC sampler beyond it. *)
  let budget = ref (min (10 * max_states) 1_000_000) in
  (* logZ u caps: log total weight of completions placing instances
     order.(u..) into remaining capacities. *)
  let rec log_z u caps =
    if u = k then 0.0 (* capacities sum to zero exactly when u = k *)
    else begin
      let key = (u * states) + encode caps in
      match Hashtbl.find_opt memo key with
      | Some z -> z
      | None ->
          decr budget;
          if !budget <= 0 then raise Too_large;
          let inst = order.(u) in
          let options = ref [] in
          for c = 0 to tcount - 1 do
            if caps.(c) > 0 then begin
              caps.(c) <- caps.(c) - 1;
              options := (log_class_weight.(inst).(c) +. log_z (u + 1) caps) :: !options;
              caps.(c) <- caps.(c) + 1
            end
          done;
          let z = log_sum_exp !options in
          Hashtbl.add memo key z;
          z
    end
  in
  let caps = Array.copy capacities in
  let total = log_z 0 caps in
  if total = neg_infinity then failwith "Placement.sample_exact: infeasible";
  (* Forward sampling of a position class per instance. *)
  let chosen_class = Array.make k (-1) in
  for u = 0 to k - 1 do
    let inst = order.(u) in
    let logw = Array.make tcount neg_infinity in
    for c = 0 to tcount - 1 do
      if caps.(c) > 0 then begin
        caps.(c) <- caps.(c) - 1;
        logw.(c) <- log_class_weight.(inst).(c) +. log_z (u + 1) caps;
        caps.(c) <- caps.(c) + 1
      end
    done;
    let m = Array.fold_left Float.max neg_infinity logw in
    let probs = Array.map (fun x -> if x = neg_infinity then 0.0 else Float.exp (x -. m)) logw in
    let c = Cc_util.Dist.sample_weights probs prng in
    chosen_class.(inst) <- c;
    caps.(c) <- caps.(c) - 1
  done;
  (* Uniformly assign the instances of each class to its labeled positions. *)
  let sigma = Array.make k (-1) in
  Array.iteri
    (fun c (_, members) ->
      let insts =
        Array.of_list
          (List.filter (fun i -> chosen_class.(i) = c) (List.init k (fun i -> i)))
      in
      let member_arr = Array.of_list members in
      Prng.shuffle prng member_arr;
      Array.iteri (fun idx i -> sigma.(member_arr.(idx)) <- i) insts)
    classes;
  sigma

let matching_weight t sigma = Permanent.matching_weight t.weights sigma

let sample ?mcmc_steps ?init prng t =
  match sample_exact prng t with
  | sigma -> sigma
  | exception Too_large ->
      let k = Array.length t.identities in
      let steps =
        match mcmc_steps with
        | Some s -> s
        | None -> Sampler.default_mcmc_steps k
      in
      Sampler.mcmc ?init prng t.weights ~steps

(* Re-raise Too_large as Invalid_argument at the documented boundary. *)
let sample_exact ?max_states prng t =
  try sample_exact ?max_states prng t
  with Too_large -> invalid_arg "Placement.sample_exact: state space too large"
