module Prng = Cc_util.Prng
module Dist = Cc_util.Dist

type method_ = Exact | Mcmc of { steps : int } | Auto

let check_nonnegative w =
  Array.iter
    (fun row ->
      Array.iter
        (fun x ->
          if x < 0.0 || not (Float.is_finite x) then
            invalid_arg "Matching.Sampler: weights must be nonnegative")
        row)
    w

(* JVV self-reduction: fix positions left to right; the conditional
   probability that position j receives remaining instance i is
   w[i][j] * perm(rest without i) / perm(rest). *)
let exact prng w =
  let k = Array.length w in
  if k > 15 then invalid_arg "Matching.Sampler.exact: k > 15";
  check_nonnegative w;
  let sigma = Array.make k (-1) in
  let current = ref w in
  (* remaining.(r) is the original instance index of row r of [current]. *)
  let remaining = ref (Array.init k (fun i -> i)) in
  for j = 0 to k - 1 do
    let rows = Array.length !current in
    let weights =
      Array.init rows (fun r ->
          if rows = 1 then (!current).(r).(0)
          else
            (!current).(r).(0)
            *. Permanent.ryser (Permanent.minor !current ~skip_row:r ~skip_col:0))
    in
    let r = Dist.sample_weights weights prng in
    sigma.(j) <- !remaining.(r);
    if rows > 1 then begin
      current := Permanent.minor !current ~skip_row:r ~skip_col:0;
      remaining :=
        Array.of_list
          (List.filteri (fun i _ -> i <> r) (Array.to_list !remaining))
    end
  done;
  sigma

let mcmc ?init prng w ~steps =
  let k = Array.length w in
  check_nonnegative w;
  if steps < 0 then invalid_arg "Matching.Sampler.mcmc: negative steps";
  let sigma =
    match init with
    | None -> Prng.permutation prng k
    | Some s ->
        if Array.length s <> k then
          invalid_arg "Matching.Sampler.mcmc: bad init length";
        Array.copy s
  in
  (* Feasibility is checked entrywise: the full product of k small
     probabilities underflows to 0.0 for large k even when every factor is
     positive. *)
  Array.iteri
    (fun j i ->
      if w.(i).(j) <= 0.0 then
        invalid_arg "Matching.Sampler.mcmc: initial assignment has zero weight")
    sigma;
  if k >= 2 then
    for _ = 1 to steps do
      let j1 = Prng.int prng k in
      let j2 = Prng.int prng (k - 1) in
      let j2 = if j2 >= j1 then j2 + 1 else j2 in
      let i1 = sigma.(j1) and i2 = sigma.(j2) in
      let before = w.(i1).(j1) *. w.(i2).(j2) in
      let after = w.(i1).(j2) *. w.(i2).(j1) in
      (* [before] > 0 since the current state is feasible; zero-weight
         proposals are rejected, keeping the chain on feasible matchings. *)
      if after > 0.0 && (after >= before || Prng.float prng (1.0) < after /. before)
      then begin
        sigma.(j1) <- i2;
        sigma.(j2) <- i1
      end
    done;
  sigma

let default_mcmc_steps k =
  if k < 2 then 0
  else
    let kf = Float.of_int k in
    int_of_float (Float.ceil (40.0 *. kf *. kf *. Float.max 1.0 (Float.log kf)))

let sample ?(method_ = Auto) prng w =
  match method_ with
  | Exact -> exact prng w
  | Mcmc { steps } -> mcmc prng w ~steps
  | Auto ->
      let k = Array.length w in
      if k <= 12 then exact prng w
      else mcmc prng w ~steps:(default_mcmc_steps k)

let exact_distribution w =
  let k = Array.length w in
  if k > 8 then invalid_arg "Matching.Sampler.exact_distribution: k > 8";
  check_nonnegative w;
  let assignments = ref [] in
  let rec go prefix used =
    if List.length prefix = k then
      assignments := Array.of_list (List.rev prefix) :: !assignments
    else
      for i = 0 to k - 1 do
        if not used.(i) then begin
          used.(i) <- true;
          go (i :: prefix) used;
          used.(i) <- false
        end
      done
  in
  go [] (Array.make k false);
  let all = List.rev !assignments in
  let weights =
    Array.of_list (List.map (fun sigma -> Permanent.matching_weight w sigma) all)
  in
  let total = Array.fold_left ( +. ) 0.0 weights in
  (all, Array.map (fun x -> x /. total) weights)
