(** The shortcut graph SHORTCUT(G, S) (Definition 2).

    For a walk on G started at u, let j be the first time (> 0) the walk is
    at a vertex of S; the shortcut transition matrix Q has
    [Q[u,v] = Pr(x_{j-1} = v)] — the distribution of the vertex visited
    {e just before} the first S-visit. It is the bridge between a walk on the
    Schur complement and first-visit edges in G (Algorithm 4).

    Two computations are provided, both n x n over the original vertex set:

    - [exact]: absorbing-chain solve on the auxiliary graph G' of
      Corollary 3 — transient part restricted to "not yet entered S", so
      Q = (I - T)^{-1} B where T moves among V\S-avoiding steps and B absorbs.
    - [approx]: the paper's route — k-th power of the 2n x 2n chain R of
      Corollary 3 by repeated squaring, optionally truncating entries to
      [bits] fractional bits after every squaring and charging matmul rounds
      to a clique [net]. Subtractive error decays as the chain absorbs
      (bench E7).

    The paper states the first-visit machinery for unweighted G; the
    implementation generalizes the [1/deg_S] factors to
    [w(u,v)/w_S(u)] so footnote 1's bounded-integer-weight extension works
    unchanged. *)

(** [exact g ~in_s] returns Q; [in_s] is the characteristic vector of S.
    @raise Invalid_argument if S is empty. *)
val exact : Cc_graph.Graph.t -> in_s:bool array -> Cc_linalg.Mat.t

(** [approx ?net ?bits g ~in_s ~k] approximates Q by the k-th power of the
    auxiliary chain ([k] a power of two). With [net = (clique, backend)] each
    squaring books [Matmul.mul_cost ~dim:2n] rounds under label
    ["shortcut powering"]. *)
val approx :
  ?net:Cc_clique.Net.t * Cc_clique.Matmul.backend ->
  ?bits:int ->
  Cc_graph.Graph.t ->
  in_s:bool array ->
  k:int ->
  Cc_linalg.Mat.t

(** [s_weight g ~in_s u] is the total edge weight from [u] into S
    (= deg_S(u) on unweighted graphs). *)
val s_weight : Cc_graph.Graph.t -> in_s:bool array -> int -> float

(** [first_visit_weights g q ~in_s ~prev ~target] is the unnormalized
    Algorithm 4 distribution over the first-visit edge (u, target): for every
    neighbor u of [target], weight [Q[prev, u] * w(u,target) / w_S(u)], which
    reduces to the paper's [Q[prev, u] / deg_S(u)] on unweighted graphs;
    returned as [(u, weight)] pairs. *)
val first_visit_weights :
  Cc_graph.Graph.t ->
  Cc_linalg.Mat.t ->
  in_s:bool array ->
  prev:int ->
  target:int ->
  (int * float) array
