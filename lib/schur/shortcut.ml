module Graph = Cc_graph.Graph
module Mat = Cc_linalg.Mat
module Solve = Cc_linalg.Solve
module Fixed = Cc_linalg.Fixed
module Net = Cc_clique.Net
module Matmul = Cc_clique.Matmul

let check_s g ~in_s =
  let n = Graph.n g in
  if Array.length in_s <> n then
    invalid_arg "Shortcut: |in_s| must equal the vertex count";
  if not (Array.exists (fun b -> b) in_s) then
    invalid_arg "Shortcut: S must be nonempty"

(* Mass from w directly into S: sum_{x in S} P[w,x]. *)
let s_mass p ~in_s w =
  let n = Mat.cols p in
  let acc = ref 0.0 in
  for x = 0 to n - 1 do
    if in_s.(x) then acc := !acc +. Mat.get p w x
  done;
  !acc

let exact g ~in_s =
  check_s g ~in_s;
  Cc_obs.Trace.with_span "shortcut.exact"
    ~args:[ ("n", string_of_int (Graph.n g)) ]
  @@ fun () ->
  let n = Graph.n g in
  let p = Graph.transition_matrix g in
  (* Transient chain: moves only to vertices outside S. *)
  let t = Mat.init ~rows:n ~cols:n (fun w x -> if in_s.(x) then 0.0 else Mat.get p w x) in
  let i_minus_t = Mat.sub (Mat.identity n) t in
  (* Q = (I - T)^{-1} diag(s_mass). Hoist the per-column S-mass out of the
     n^2 init (it only depends on the column) — one engine pass over the
     machines instead of an O(n) rescan per entry. *)
  let fundamental = Solve.inverse i_minus_t in
  let sm = Cc_engine.parallel_map (Cc_engine.get ()) n (s_mass p ~in_s) in
  Mat.init ~rows:n ~cols:n (fun u v -> Mat.get fundamental u v *. sm.(v))

(* The 2n x 2n auxiliary chain of Corollary 3: states 0..n-1 are L-copies
   (walking, not yet entered S), states n..2n-1 are absorbing R-copies. *)
let auxiliary_chain g ~in_s =
  let n = Graph.n g in
  let p = Graph.transition_matrix g in
  Mat.init ~rows:(2 * n) ~cols:(2 * n) (fun a b ->
      if a >= n then if a = b then 1.0 else 0.0
      else if b < n then if in_s.(b) then 0.0 else Mat.get p a b
      else if b = a + n then s_mass p ~in_s a
      else 0.0)

let approx ?net ?bits g ~in_s ~k =
  check_s g ~in_s;
  if k <= 0 || k land (k - 1) <> 0 then
    invalid_arg "Shortcut.approx: k must be a positive power of two";
  Cc_obs.Trace.with_span "shortcut.approx"
    ~args:[ ("n", string_of_int (Graph.n g)); ("k", string_of_int k) ]
  @@ fun () ->
  let n = Graph.n g in
  let r = auxiliary_chain g ~in_s in
  let maybe_round m = match bits with None -> m | Some b -> Fixed.round_mat ~bits:b m in
  let charge () =
    match net with
    | None -> ()
    | Some (clique, backend) ->
        Net.charge clique ~label:"shortcut powering"
          (Matmul.mul_cost clique backend ~dim:(2 * n))
  in
  let rec go m k =
    if k = 1 then m
    else begin
      charge ();
      go (maybe_round (Mat.mul m m)) (k / 2)
    end
  in
  let rk = go (maybe_round r) k in
  Mat.init ~rows:n ~cols:n (fun u v -> Mat.get rk u (n + v))

(* Total edge weight from u into S (= deg_S(u) on unweighted graphs). *)
let s_weight g ~in_s u =
  Array.fold_left
    (fun acc (v, w) -> if in_s.(v) then acc +. w else acc)
    0.0 (Graph.neighbors g u)

let first_visit_weights g q ~in_s ~prev ~target =
  check_s g ~in_s;
  Array.map
    (fun (u, w_uv) ->
      let ws = s_weight g ~in_s u in
      let w = if ws = 0.0 then 0.0 else Mat.get q prev u *. w_uv /. ws in
      (u, w))
    (Graph.neighbors g target)
