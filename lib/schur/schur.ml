module Graph = Cc_graph.Graph
module Mat = Cc_linalg.Mat
module Solve = Cc_linalg.Solve
module Net = Cc_clique.Net
module Matmul = Cc_clique.Matmul

let members ~n ~s =
  let in_s = Array.make n false in
  Array.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Schur.members: vertex out of range";
      if in_s.(v) then invalid_arg "Schur.members: duplicate vertex";
      in_s.(v) <- true)
    s;
  in_s

let graph_exact g ~s =
  if Array.length s = 0 then invalid_arg "Schur.graph_exact: empty S";
  ignore (members ~n:(Graph.n g) ~s);
  Cc_obs.Trace.with_span "schur.exact"
    ~args:
      [
        ("n", string_of_int (Graph.n g));
        ("keep", string_of_int (Array.length s));
      ]
  @@ fun () ->
  let l = Graph.laplacian g in
  let schur_l = Solve.schur_complement l ~keep:s in
  (* The Schur complement of a Laplacian is a Laplacian (Fact 2.3.6 in Kyng);
     clamp numeric dust so tiny positive off-diagonals do not create edges. *)
  Graph.of_laplacian ~tol:1e-9 schur_l

let transition_exact g ~s = Graph.transition_matrix (graph_exact g ~s)

let transition_via_shortcut g q ~s =
  let n = Graph.n g in
  let in_s = members ~n ~s in
  let k = Array.length s in
  (* R[u,v] = w(u,v)/w_S(u) for edges u~v with v in S (Corollary 4,
     generalized to weights; = 1/deg_S(u) when unweighted). *)
  (* Per-machine S-weights, hoisted out of the n^2 init: each entry of R
     only needs its row's total edge weight into S. *)
  let ws =
    Cc_engine.parallel_map (Cc_engine.get ()) n (Shortcut.s_weight g ~in_s)
  in
  let r =
    Mat.init ~rows:n ~cols:n (fun u v ->
        if ws.(u) = 0.0 then if u = v then 1.0 else 0.0
        else if in_s.(v) then Graph.edge_weight g u v /. ws.(u)
        else 0.0)
  in
  let m = Mat.mul q r in
  Mat.init ~rows:k ~cols:k (fun i j ->
      if i = j then 0.0
      else
        let u = s.(i) and v = s.(j) in
        let diag = Mat.get m u u in
        let denom = 1.0 -. diag in
        if denom <= 0.0 then 0.0 else Mat.get m u v /. denom)

let approx ?net ?bits g ~s ~k =
  let in_s = members ~n:(Graph.n g) ~s in
  Cc_obs.Trace.with_span "schur.approx"
    ~args:
      [
        ("n", string_of_int (Graph.n g));
        ("keep", string_of_int (Array.length s));
        ("k", string_of_int k);
      ]
  @@ fun () ->
  let q = Shortcut.approx ?net ?bits g ~in_s ~k in
  (match net with
  | None -> ()
  | Some (clique, backend) ->
      (* One more n x n product (QR) plus a row-local normalization. *)
      Net.charge clique ~label:"schur normalize"
        (Matmul.mul_cost clique backend ~dim:(Graph.n g)));
  transition_via_shortcut g q ~s
