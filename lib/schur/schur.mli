(** The Schur complement graph SCHUR(G, S) (Definition 1).

    SCHUR(G,S) is the weighted graph on S whose Laplacian is the linear-
    algebraic Schur complement of L(G) onto S; a random walk on it is
    distributed exactly like a walk on G with the visits outside S deleted.
    Later phases of the sampler walk on SCHUR(G, S) to skip the vertices
    already visited (Section 3.2).

    Vertices of all S-indexed results are relabeled [0 .. |S|-1] following
    the order of the [s] array; [s.(i)] is the original vertex of index i.

    Two computations:
    - [graph_exact]/[transition_exact]: block elimination on L(G)
      (Section 2.2) — the reference.
    - [transition_via_shortcut]/[approx]: the paper's distributed route
      (Corollary 4): from the shortcut matrix Q form R with
      [R[u,v] = 1/deg_S(u)] for edges u~v into S, take M = QR — M[u,v] is
      the probability that the first S-visit from u is v — and normalize each
      row off the diagonal by [1/(1 - M[u,u])]. *)

(** [graph_exact g ~s] is the weighted Schur complement graph on [|s|]
    relabeled vertices. @raise Invalid_argument if [s] is empty, has
    duplicates, or the eliminated block is singular (e.g. disconnected
    pieces entirely outside S). *)
val graph_exact : Cc_graph.Graph.t -> s:int array -> Cc_graph.Graph.t

(** [transition_exact g ~s] is the |s| x |s| random-walk matrix of
    [graph_exact]. *)
val transition_exact : Cc_graph.Graph.t -> s:int array -> Cc_linalg.Mat.t

(** [transition_via_shortcut g q ~s] applies the Corollary 4 normalization to
    a shortcut matrix [q] (exact or approximate). *)
val transition_via_shortcut :
  Cc_graph.Graph.t -> Cc_linalg.Mat.t -> s:int array -> Cc_linalg.Mat.t

(** [approx ?net ?bits g ~s ~k] is the full paper pipeline: approximate Q by
    k-step powering (Corollary 3), then normalize (Corollary 4). Books
    rounds under labels ["shortcut powering"] and ["schur normalize"] when
    [net] is given. *)
val approx :
  ?net:Cc_clique.Net.t * Cc_clique.Matmul.backend ->
  ?bits:int ->
  Cc_graph.Graph.t ->
  s:int array ->
  k:int ->
  Cc_linalg.Mat.t

(** [members ~n ~s] is the characteristic vector of [s] on [n] vertices. *)
val members : n:int -> s:int array -> bool array
