(** The Congested Clique communication model (Section 2.1 of the paper).

    [n] machines with IDs [0 .. n-1] communicate in synchronous rounds. In
    one round each machine may send and receive O(n) messages of O(log n)
    bits each; by Lenzen's routing theorem the destinations are unrestricted
    as long as no machine sends or receives more than n messages. This module
    is the metering layer every distributed algorithm in the repository moves
    its data through: an [exchange] of packets is charged
    [ceil(max-per-machine load / n)] rounds, and a ledger records rounds,
    messages, and words per algorithm-supplied label.

    One {e word} is the paper's O(log n)-bit message unit: it can carry a
    constant number of vertex IDs or one limb of a fixed-point probability.
    [words_for_bits] converts a bit count into words at the current n.

    Local computation is unbounded in the model, so the simulator performs
    machine-local steps inline; only communication affects the ledger. *)

type t

(** [create ~n] builds a clique of [n >= 2] machines. *)
val create : n:int -> t

val n : t -> int

(** {1 Packets and exchanges} *)

type packet = { src : int; dst : int; words : int }
(** A point-to-point payload of [words] words. [src = dst] packets are free
    (local memory) but validated. *)

(** [exchange t ~label packets] delivers all packets in
    [ceil(L / n)] rounds where [L] is the maximum number of words any single
    machine sends or receives — Lenzen routing. The packets' payloads are
    carried by the caller; the simulator only meters them.
    @raise Invalid_argument on out-of-range machine IDs or negative sizes. *)
val exchange : t -> label:string -> packet list -> unit

(** [broadcast t ~label ~src ~words] delivers the same [words]-word payload
    from [src] to every machine: [max 1 (ceil (words / n))] rounds via a
    broadcast tree (each recipient re-shares its share). *)
val broadcast : t -> label:string -> src:int -> words:int -> unit

(** [all_to_all t ~label ~words_each] is the dense pattern in which every
    machine sends [words_each] words to every other machine —
    [max 1 words_each] rounds. Used by the transpose step of the
    Initialization (every machine i sends P^k[i,j] to machine j). *)
val all_to_all : t -> label:string -> words_each:int -> unit

(** [aggregate t ~label ~contributors ~dst ~words_each] models a converge-cast
    in which each listed machine sends the final (positional) [words_each] words toward [dst]; sums
    are combined along the way when [combinable] (default true), costing
    [ceil(total / n)] rounds when not combinable and
    [max 1 (ceil (words_each / n))] (tree combining) when combinable. *)
val aggregate :
  t ->
  label:string ->
  ?combinable:bool ->
  contributors:int list ->
  dst:int ->
  int ->
  unit

(** [charge t ~label rounds] books rounds for a primitive whose cost is known
    analytically rather than routed (e.g. fast matrix multiplication with the
    Charged backend). *)
val charge : t -> label:string -> float -> unit

(** {1 Accounting} *)

val rounds : t -> float
val messages : t -> int
val words : t -> int

(** [ledger t] is the per-label (rounds, messages, words) breakdown, sorted
    by descending rounds. *)
val ledger : t -> (string * float * int * int) list

(** [reset t] zeroes all counters. *)
val reset : t -> unit

(** [words_for_bits t bits] is the number of O(log n)-bit words needed to
    carry [bits] bits at this clique size (word size = max 8 (ceil(log2 n))). *)
val words_for_bits : t -> int -> int

(** [entry_words t] is the number of words carrying one fixed-point matrix
    entry of O(log^2 n) bits (Section 3.5) — i.e. [words_for_bits] of
    [log2 n * log2 n], at least 1. *)
val entry_words : t -> int

(** [pp_ledger fmt t] pretty-prints the ledger. *)
val pp_ledger : Format.formatter -> t -> unit
