(** The Congested Clique communication model (Section 2.1 of the paper).

    [n] machines with IDs [0 .. n-1] communicate in synchronous rounds. In
    one round each machine may send and receive O(n) messages of O(log n)
    bits each; by Lenzen's routing theorem the destinations are unrestricted
    as long as no machine sends or receives more than n messages. This module
    is the metering layer every distributed algorithm in the repository moves
    its data through: an [exchange] of packets is charged
    [ceil(max-per-machine load / n)] rounds, and a ledger records rounds,
    messages, and words per algorithm-supplied label.

    One {e word} is the paper's O(log n)-bit message unit: it can carry a
    constant number of vertex IDs or one limb of a fixed-point probability.
    [words_for_bits] converts a bit count into words at the current n.

    Local computation is unbounded in the model, so the simulator performs
    machine-local steps inline; only communication affects the ledger. *)

type t

(** [create ~n] builds a clique of [n >= 2] machines (perfectly reliable
    unless armed with {!with_faults}). *)
val create : n:int -> t

(** [with_faults f t] arms the net with the fault injector [f] and returns
    [t] (chainable: [Net.create ~n |> Net.with_faults f]). From then on every
    booked primitive advances the injector's round clock — firing scheduled
    crash-stop failures at round boundaries — and the {!reliable_exchange} /
    {!reliable_broadcast} primitives draw per-message drop/corruption
    verdicts from it. *)
val with_faults : Fault.t -> t -> t

val n : t -> int

(** [faults t] is the injector the net is armed with, if any. *)
val faults : t -> Fault.t option

(** {1 Execution transport}

    The net books costs the same way on every transport; a non-default
    transport additionally {e mirrors} each booked primitive to a pool of
    supervised OS worker processes ({!Cc_transport.Transport.mpproc}) and
    SIGKILLs the owning worker when the fault schedule crashes a machine.
    The mirror is write-only from the model's point of view — ledger,
    per-machine profile, and recorder digests are identical across
    transports, the contract the cross-transport CI diff enforces. *)

(** [set_transport t tr] installs the execution transport (default:
    {!Cc_transport.Transport.inproc}). The caller owns [tr]'s lifecycle —
    call [tr.sync] at end of run before reading its health, and
    [tr.shutdown] when done. *)
val set_transport : t -> Cc_transport.Transport.t -> unit

val transport : t -> Cc_transport.Transport.t

(** {1 Packets and exchanges} *)

type packet = { src : int; dst : int; words : int }
(** A point-to-point payload of [words] words. [src = dst] packets are free
    (local memory) but validated. *)

(** [exchange t ~label packets] delivers all packets in
    [ceil(L / n)] rounds where [L] is the maximum number of words any single
    machine sends or receives — Lenzen routing. The packets' payloads are
    carried by the caller; the simulator only meters them.
    @raise Invalid_argument on out-of-range machine IDs or negative sizes. *)
val exchange : t -> label:string -> packet list -> unit

(** [broadcast t ~label ~src ~words] delivers the same [words]-word payload
    from [src] to every machine via a two-step broadcast tree ([src] scatters
    n shares of [ceil (words / n)] words, every machine re-broadcasts its
    share). Booked as [max 1 (ceil (words / n))] rounds — the standard
    O(ceil(W/n) + 1) accounting, with the tree's constant factor folded into
    the big-O. *)
val broadcast : t -> label:string -> src:int -> words:int -> unit

(** {1 Reliable delivery under fault injection}

    When the net carries a {!Fault.t}, the plain primitives above stay
    fault-oblivious (they model traffic whose loss the algorithm handles at
    a higher level); the [reliable_*] variants implement ack + bounded
    retransmission with exponential round backoff. Every retransmission wave
    is metered under the original label with a [":retry"] suffix (and
    straggler delays under [":straggle"]); the extra rounds are also
    accumulated in {!overhead_rounds}. Without a fault injector they degrade
    to the plain primitives and report every packet [Delivered]. *)

(** Per-packet outcome of a reliable primitive. *)
type delivery =
  | Delivered  (** arrived intact (possibly after retransmissions). *)
  | Corrupted
      (** arrived with a payload bit flip the transport cannot detect;
          surfaced so the application layer can checksum and re-run. *)
  | Lost
      (** undeliverable: an endpoint crashed or the retransmission budget
          ([Fault.spec.max_retries]) was exhausted. *)

(** [reliable_exchange t ~label packets] is {!exchange} with per-packet
    delivery tracking; result index [i] is the outcome of the [i]-th packet
    of [packets]. Fault verdicts are drawn in packet order, so a fixed packet
    order plus a fixed fault seed gives a bit-identical outcome. *)
val reliable_exchange : t -> label:string -> packet list -> delivery array

(** [reliable_broadcast t ~label ~src ~words] is {!broadcast} with per-
    destination delivery tracking (index = machine; [src]'s own slot is
    always [Delivered]). A crashed source loses every recipient. *)
val reliable_broadcast :
  t -> label:string -> src:int -> words:int -> delivery array

(** [all_to_all t ~label ~words_each] is the dense pattern in which every
    machine sends [words_each] words to every other machine —
    [max 1 words_each] rounds. Used by the transpose step of the
    Initialization (every machine i sends P^k[i,j] to machine j). *)
val all_to_all : t -> label:string -> words_each:int -> unit

(** [aggregate t ~label ~contributors ~dst ~words_each] models a converge-cast
    in which each listed machine sends the final (positional) [words_each] words toward [dst]; sums
    are combined along the way when [combinable] (default true), costing
    [ceil(total / n)] rounds when not combinable and
    [max 1 (ceil (words_each / n))] (tree combining) when combinable. *)
val aggregate :
  t ->
  label:string ->
  ?combinable:bool ->
  contributors:int list ->
  dst:int ->
  int ->
  unit

(** [charge t ~label rounds] books rounds for a primitive whose cost is known
    analytically rather than routed (e.g. fast matrix multiplication with the
    Charged backend). *)
val charge : t -> label:string -> float -> unit

(** [charge_overhead t ~label rounds] is {!charge} that also counts the
    rounds toward {!overhead_rounds} — for algorithm-level fault recovery
    (checkpoint restores, recomputation) booked under [":retry"] labels. *)
val charge_overhead : t -> label:string -> float -> unit

(** [note_overhead t rounds] counts already-booked rounds toward
    {!overhead_rounds} without booking them again (used when a recovery wave
    was routed through {!reliable_exchange} under a recovery label). *)
val note_overhead : t -> float -> unit

(** {1 Accounting} *)

val rounds : t -> float
val messages : t -> int
val words : t -> int

(** [retransmits t] counts packets retransmitted by the reliable layer. *)
val retransmits : t -> int

(** [dropped t] counts transmission attempts that failed (dropped by the
    injector, or addressed to/from a crashed machine). *)
val dropped : t -> int

(** [overhead_rounds t] is the total rounds booked for fault recovery
    (retransmission waves, backoff waits, straggler delays) — the metered
    price of running over an unreliable network. *)
val overhead_rounds : t -> float

(** [ledger t] is the per-label (rounds, messages, words) breakdown, sorted
    by descending rounds with ties broken by label (deterministic across
    runs). *)
val ledger : t -> (string * float * int * int) list

(** {1 Observability}

    Every booked primitive is mirrored to two places {e after} the ledger
    update: the per-net event bus ({!add_sink} subscribers, called in
    subscription order), and the process-wide {!Cc_obs.Trace} collector
    (when one is installed). Neither path touches the ledger or draws
    randomness, so an observed run is bit-identical to a bare one. *)

(** The metering primitive a cost was booked under. *)
type event_kind = Exchange | Broadcast | All_to_all | Aggregate | Charge

type event = {
  kind : event_kind;
  label : string;  (** ledger label. *)
  rounds : float;  (** rounds booked by this primitive. *)
  messages : int;
  words : int;
  max_load : int;
      (** maximum words any one machine sent or received in this primitive —
          the per-machine load Lenzen routing charges [ceil (load / n)]
          rounds for; [0] for analytic {!charge}s. *)
  total_rounds : float;  (** {!rounds} immediately after booking. *)
  sent : int array;
      (** words each machine sent in this primitive (one slot per machine;
          [[||]] for analytic {!charge}s, which route no traffic). Shared
          with the booking layer for the duration of the callback — sinks
          that retain it must copy. *)
  recv : int array;  (** words each machine received; same shape as [sent]. *)
  total_retransmits : int;  (** {!retransmits} at booking time. *)
  total_dropped : int;  (** {!dropped} at booking time. *)
}

(** Handle for one event-bus subscription. *)
type sink_id

(** [add_sink t f] subscribes [f] to the event bus: it is invoked once per
    booked primitive, after earlier subscribers. Subscriptions survive
    {!reset}. *)
val add_sink : t -> (event -> unit) -> sink_id

(** [remove_sink t id] cancels a subscription (idempotent). *)
val remove_sink : t -> sink_id -> unit

(** [set_sink t sink] installs (or with [None] removes) a single callback —
    a thin compatibility wrapper over {!add_sink} / {!remove_sink} that
    manages one dedicated subscription slot. Other {!add_sink} subscribers
    are unaffected. *)
val set_sink : t -> (event -> unit) option -> unit

(** [attach_recorder t r] subscribes the flight recorder [r] to the event
    bus: every booked primitive is appended to [r] as a canonical
    {!Cc_obs.Recorder.record} (per-machine words copied, fault counters
    snapshotted). *)
val attach_recorder : t -> Cc_obs.Recorder.t -> sink_id

(** [attach_invariant t inv] subscribes the invariant monitor [inv] to the
    event bus for online checking of every booked primitive (Lenzen cap,
    conservation, round monotonicity). Violations accumulate in [inv] and
    in the Metrics registry; see {!Cc_obs.Invariant}. *)
val attach_invariant : t -> Cc_obs.Invariant.t -> sink_id

(** [ledger_violations t inv] reconciles the event stream [inv] has seen
    against [t]'s ledger and totals ({!Cc_obs.Invariant.check_ledger});
    call once at end of run, with [inv] attached since [t]'s creation (or
    last {!reset}). *)
val ledger_violations : t -> Cc_obs.Invariant.t -> Cc_obs.Invariant.violation list

(** [kind_name k] is the lowercase wire name (["exchange"], ["broadcast"],
    ["all_to_all"], ["aggregate"], ["charge"]). *)
val kind_name : event_kind -> string

(** {2 Per-machine load profile}

    Alongside the per-label ledger, every routed primitive attributes its
    word traffic to the machines that carried it: exchanges per packet
    endpoint, a broadcast to its source (each other machine receiving a
    copy), an all-to-all evenly, an aggregate to its contributors and
    destination. Analytic {!charge}s move no attributable words. The profile
    is pure observation — building it reads the counters and never perturbs
    the ledger. *)

type machine_load = {
  machine : int;
  sent_words : int;  (** words this machine sent, across all labels. *)
  recv_words : int;
  sent_messages : int;
  recv_messages : int;
  load : int;  (** [max sent_words recv_words] — what rounds are paid for. *)
}

type profile = {
  machines : int;
  per_machine : machine_load array;  (** indexed by machine ID. *)
  max_load : int;  (** the hottest machine's load. *)
  mean_load : float;  (** balanced ideal: total booked words / machines. *)
  p50_load : float;
  p95_load : float;
  imbalance : float;
      (** [max_load /. mean_load]: [~1] for a balanced pattern (all-to-all),
          [~n] when one machine carries all the traffic. *)
  hot : (int * int) list;  (** top-k [(machine, load)], descending. *)
}

(** [load_profile ?top_k t] summarizes the per-machine traffic booked so far
    ([top_k], default 3, bounds the [hot] list). *)
val load_profile : ?top_k:int -> t -> profile

(** [obs_profile t] is the full machine × label congestion matrix as a
    {!Cc_obs.Profile.t}, for heatmap rendering and JSONL export. *)
val obs_profile : t -> Cc_obs.Profile.t

(** [pp_profile fmt t] renders the congestion heatmap
    ({!Cc_obs.Profile.render}) for the traffic booked so far. *)
val pp_profile : Format.formatter -> t -> unit

(** [reset t] zeroes all counters — the totals, the fault-overhead counters,
    every per-label entry, and the per-machine load profile. Event-bus
    subscriptions ({!add_sink} and the {!set_sink} slot) are wiring, not
    state, and survive a reset. *)
val reset : t -> unit

(** [words_for_bits t bits] is the number of O(log n)-bit words needed to
    carry [bits] bits at this clique size (word size = max 8 (ceil(log2 n))). *)
val words_for_bits : t -> int -> int

(** [entry_words t] is the number of words carrying one fixed-point matrix
    entry of O(log^2 n) bits (Section 3.5) — i.e. [words_for_bits] of
    [log2 n * log2 n], at least 1. *)
val entry_words : t -> int

(** [pp_totals fmt t] prints the one-line rounds/messages/words totals. *)
val pp_totals : Format.formatter -> t -> unit

(** [pp_fault_summary fmt t] prints the one-line retransmit/drop/overhead
    summary. *)
val pp_fault_summary : Format.formatter -> t -> unit

(** [ledger_table t] is the ledger as a {!Cc_util.Table.t} with a share
    column (per-label rounds as a percentage of the total). *)
val ledger_table : t -> Cc_util.Table.t

(** [pp_ledger fmt t] pretty-prints the totals, fault summary, and ledger
    table. *)
val pp_ledger : Format.formatter -> t -> unit
