type entry = { mutable rounds : float; mutable messages : int; mutable words : int }

type t = {
  n : int;
  mutable total_rounds : float;
  mutable total_messages : int;
  mutable total_words : int;
  by_label : (string, entry) Hashtbl.t;
}

let create ~n =
  if n < 2 then invalid_arg "Net.create: need at least 2 machines";
  {
    n;
    total_rounds = 0.0;
    total_messages = 0;
    total_words = 0;
    by_label = Hashtbl.create 16;
  }

let n t = t.n

type packet = { src : int; dst : int; words : int }

let entry_for t label =
  match Hashtbl.find_opt t.by_label label with
  | Some e -> e
  | None ->
      let e = { rounds = 0.0; messages = 0; words = 0 } in
      Hashtbl.add t.by_label label e;
      e

let book t ~label ~rounds ~messages ~words =
  t.total_rounds <- t.total_rounds +. rounds;
  t.total_messages <- t.total_messages + messages;
  t.total_words <- t.total_words + words;
  let e = entry_for t label in
  e.rounds <- e.rounds +. rounds;
  e.messages <- e.messages + messages;
  e.words <- e.words + words

let exchange t ~label packets =
  let sent = Array.make t.n 0 and received = Array.make t.n 0 in
  let messages = ref 0 and total_words = ref 0 in
  List.iter
    (fun { src; dst; words } ->
      if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
        invalid_arg "Net.exchange: machine ID out of range";
      if words < 0 then invalid_arg "Net.exchange: negative payload";
      if src <> dst && words > 0 then begin
        sent.(src) <- sent.(src) + words;
        received.(dst) <- received.(dst) + words;
        incr messages;
        total_words := !total_words + words
      end)
    packets;
  let load = ref 0 in
  for i = 0 to t.n - 1 do
    load := max !load (max sent.(i) received.(i))
  done;
  if !load > 0 then
    let rounds = Float.of_int ((!load + t.n - 1) / t.n) in
    book t ~label ~rounds ~messages:!messages ~words:!total_words

let broadcast t ~label ~src ~words =
  if src < 0 || src >= t.n then invalid_arg "Net.broadcast: bad source";
  if words < 0 then invalid_arg "Net.broadcast: negative payload";
  if words > 0 then
    (* Broadcast tree: src splits the payload into n shares, one per machine,
       then every machine rebroadcasts its share — 2 * ceil(words/n) rounds,
       floored at 1 and booked as ceil(words/n) "effective" rounds to match
       the standard O(ceil(W/n) + 1) accounting. *)
    let rounds = Float.of_int (max 1 ((words + t.n - 1) / t.n)) in
    book t ~label ~rounds ~messages:(t.n - 1) ~words:(words * (t.n - 1))

let all_to_all t ~label ~words_each =
  if words_each < 0 then invalid_arg "Net.all_to_all: negative payload";
  if words_each > 0 then
    let messages = t.n * (t.n - 1) in
    book t ~label
      ~rounds:(Float.of_int (max 1 words_each))
      ~messages ~words:(messages * words_each)

let aggregate t ~label ?(combinable = true) ~contributors ~dst words_each =
  if dst < 0 || dst >= t.n then invalid_arg "Net.aggregate: bad destination";
  if words_each < 0 then invalid_arg "Net.aggregate: negative payload";
  let k =
    List.fold_left
      (fun acc src ->
        if src < 0 || src >= t.n then invalid_arg "Net.aggregate: bad contributor";
        if src = dst then acc else acc + 1)
      0 contributors
  in
  if k > 0 && words_each > 0 then
    let total = k * words_each in
    let rounds =
      if combinable then Float.of_int (max 1 ((words_each + t.n - 1) / t.n))
      else Float.of_int ((total + t.n - 1) / t.n)
    in
    book t ~label ~rounds ~messages:k ~words:total

let charge t ~label rounds =
  if rounds < 0.0 then invalid_arg "Net.charge: negative rounds";
  book t ~label ~rounds ~messages:0 ~words:0

let rounds t = t.total_rounds
let messages t = t.total_messages
let words t = t.total_words

let ledger t =
  Hashtbl.fold (fun label e acc -> (label, e.rounds, e.messages, e.words) :: acc)
    t.by_label []
  |> List.sort (fun (_, r1, _, _) (_, r2, _, _) -> compare r2 r1)

let reset t =
  t.total_rounds <- 0.0;
  t.total_messages <- 0;
  t.total_words <- 0;
  Hashtbl.reset t.by_label

let word_bits t = max 8 (int_of_float (Float.ceil (Float.log2 (Float.of_int t.n))))

let words_for_bits t bits =
  if bits < 0 then invalid_arg "Net.words_for_bits: negative bits";
  if bits = 0 then 0 else max 1 ((bits + word_bits t - 1) / word_bits t)

let entry_words t =
  let lg = int_of_float (Float.ceil (Float.log2 (Float.of_int t.n))) in
  max 1 (words_for_bits t (lg * lg))

let pp_ledger fmt t =
  Format.fprintf fmt "@[<v>total rounds: %.1f, messages: %d, words: %d@,"
    t.total_rounds t.total_messages t.total_words;
  List.iter
    (fun (label, r, m, w) ->
      Format.fprintf fmt "  %-32s %10.1f rounds %10d msgs %12d words@," label r m w)
    (ledger t);
  Format.fprintf fmt "@]"
