type entry = { mutable rounds : float; mutable messages : int; mutable words : int }

(* Per-machine word traffic booked under one label — one row of the
   machine x label congestion matrix. *)
type lane = { lane_sent : int array; lane_recv : int array }

type event_kind = Exchange | Broadcast | All_to_all | Aggregate | Charge

type event = {
  kind : event_kind;
  label : string;
  rounds : float;
  messages : int;
  words : int;
  max_load : int;
  total_rounds : float;
  sent : int array;
  recv : int array;
  total_retransmits : int;
  total_dropped : int;
}

type sink_id = int

type t = {
  n : int;
  mutable total_rounds : float;
  mutable total_messages : int;
  mutable total_words : int;
  mutable total_retransmits : int;
  mutable total_dropped : int;
  mutable overhead_rounds : float;
  by_label : (string, entry) Hashtbl.t;
  by_machine : (string, lane) Hashtbl.t;
  m_sent_words : int array;
  m_recv_words : int array;
  m_sent_messages : int array;
  m_recv_messages : int array;
  mutable injected : Fault.t option;
  (* Sinks in subscription order; the compat slot tracks the subscription
     installed through the legacy set_sink interface. *)
  mutable sinks : (sink_id * (event -> unit)) list;
  mutable next_sink : sink_id;
  mutable compat_sink : sink_id option;
  (* Execution transport. The default in-process transport is a no-op; an
     Mpproc transport mirrors every booked primitive to its worker pool and
     SIGKILLs workers when the fault schedule crashes their machines. The
     transport never feeds back into the ledger, so digests are
     transport-independent by construction. *)
  mutable transport : Cc_transport.Transport.t;
  mutable announced_crashed : int list;
}

let create ~n =
  if n < 2 then invalid_arg "Net.create: need at least 2 machines";
  {
    n;
    total_rounds = 0.0;
    total_messages = 0;
    total_words = 0;
    total_retransmits = 0;
    total_dropped = 0;
    overhead_rounds = 0.0;
    by_label = Hashtbl.create 16;
    by_machine = Hashtbl.create 16;
    m_sent_words = Array.make n 0;
    m_recv_words = Array.make n 0;
    m_sent_messages = Array.make n 0;
    m_recv_messages = Array.make n 0;
    injected = None;
    sinks = [];
    next_sink = 0;
    compat_sink = None;
    transport = Cc_transport.Transport.inproc ();
    announced_crashed = [];
  }

let n t = t.n
let faults t = t.injected

let set_transport t tr =
  if Cc_transport.Transport.is_mpproc tr then
    Cc_obs.Metrics.incr "net.transport.mpproc";
  t.transport <- tr

let transport t = t.transport

let add_sink t f =
  let id = t.next_sink in
  t.next_sink <- id + 1;
  t.sinks <- t.sinks @ [ (id, f) ];
  id

let remove_sink t id = t.sinks <- List.filter (fun (i, _) -> i <> id) t.sinks

let set_sink t sink =
  (match t.compat_sink with
  | Some id ->
      remove_sink t id;
      t.compat_sink <- None
  | None -> ());
  match sink with
  | Some f -> t.compat_sink <- Some (add_sink t f)
  | None -> ()

let kind_name = function
  | Exchange -> "exchange"
  | Broadcast -> "broadcast"
  | All_to_all -> "all_to_all"
  | Aggregate -> "aggregate"
  | Charge -> "charge"

let with_faults f t =
  t.injected <- Some f;
  t

type packet = { src : int; dst : int; words : int }

let entry_for t label =
  match Hashtbl.find_opt t.by_label label with
  | Some e -> e
  | None ->
      let e = { rounds = 0.0; messages = 0; words = 0 } in
      Hashtbl.add t.by_label label e;
      e

let lane_for t label =
  match Hashtbl.find_opt t.by_machine label with
  | Some l -> l
  | None ->
      let l = { lane_sent = Array.make t.n 0; lane_recv = Array.make t.n 0 } in
      Hashtbl.add t.by_machine label l;
      l

(* Attribute one primitive's per-machine word traffic to the running totals
   and the label's lane. [sent]/[recv] are the words machine [i] sent and
   received in this primitive; [sent_msgs]/[recv_msgs] the message counts. *)
let attribute t ~label ~sent ~recv ~sent_msgs ~recv_msgs =
  let l = lane_for t label in
  for i = 0 to t.n - 1 do
    l.lane_sent.(i) <- l.lane_sent.(i) + sent.(i);
    l.lane_recv.(i) <- l.lane_recv.(i) + recv.(i);
    t.m_sent_words.(i) <- t.m_sent_words.(i) + sent.(i);
    t.m_recv_words.(i) <- t.m_recv_words.(i) + recv.(i);
    t.m_sent_messages.(i) <- t.m_sent_messages.(i) + sent_msgs.(i);
    t.m_recv_messages.(i) <- t.m_recv_messages.(i) + recv_msgs.(i)
  done

let book ?(sent = [||]) ?(recv = [||]) t ~kind ~label ~rounds ~messages ~words
    ~max_load =
  t.total_rounds <- t.total_rounds +. rounds;
  t.total_messages <- t.total_messages + messages;
  t.total_words <- t.total_words + words;
  let e = entry_for t label in
  e.rounds <- e.rounds +. rounds;
  e.messages <- e.messages + messages;
  e.words <- e.words + words;
  (* Observability taps: caller-installed sinks, the metrics registry, and
     the active trace all see every booked primitive. Pure observation —
     none may (nor can, through this interface) change the ledger or the
     fault schedule. *)
  if max_load > 0 then begin
    let x = float_of_int max_load in
    Cc_obs.Metrics.observe "net.max_load" x;
    Cc_obs.Metrics.observe ("net.max_load." ^ kind_name kind) x
  end;
  (match t.sinks with
  | [] -> ()
  | sinks ->
      let ev =
        {
          kind;
          label;
          rounds;
          messages;
          words;
          max_load;
          total_rounds = t.total_rounds;
          sent;
          recv;
          total_retransmits = t.total_retransmits;
          total_dropped = t.total_dropped;
        }
      in
      List.iter (fun (_, f) -> f ev) sinks);
  if Cc_obs.Trace.enabled () then
    Cc_obs.Trace.net_event ~kind:(kind_name kind) ~label ~rounds ~messages
      ~words ~max_load ~round_clock:t.total_rounds ();
  (* Mirror the booked primitive to the execution transport (a no-op on the
     in-process transport). Strictly after the ledger and the sinks: the
     transport observes the model, never the other way around. *)
  if Cc_transport.Transport.is_mpproc t.transport then
    t.transport.Cc_transport.Transport.emit
      {
        Cc_transport.Wire.kind = kind_name kind;
        label;
        rounds;
        messages;
        words;
        max_load;
        sent;
        recv;
      };
  (* Crash-stop failures fire at round boundaries: booking a primitive ends
     its rounds, so scheduled crashes up to the new clock take effect now. *)
  match t.injected with
  | Some f ->
      Fault.advance f ~now:t.total_rounds;
      (* Newly crashed machines take their transport workers down with them:
         a real mid-round SIGKILL, followed by the supervisor's
         respawn-or-reroute recovery. *)
      if Cc_transport.Transport.is_mpproc t.transport && Fault.any_crashed f
      then begin
        let crashed = Fault.crashed f in
        let fresh =
          List.filter (fun m -> not (List.mem m t.announced_crashed)) crashed
        in
        if fresh <> [] then begin
          t.announced_crashed <- crashed;
          t.transport.Cc_transport.Transport.crash fresh
        end
      end
  | None -> ()

let exchange t ~label packets =
  let sent = Array.make t.n 0 and received = Array.make t.n 0 in
  let sent_msgs = Array.make t.n 0 and recv_msgs = Array.make t.n 0 in
  let messages = ref 0 and total_words = ref 0 in
  List.iter
    (fun { src; dst; words } ->
      if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
        invalid_arg "Net.exchange: machine ID out of range";
      if words < 0 then invalid_arg "Net.exchange: negative payload";
      if src <> dst && words > 0 then begin
        sent.(src) <- sent.(src) + words;
        received.(dst) <- received.(dst) + words;
        sent_msgs.(src) <- sent_msgs.(src) + 1;
        recv_msgs.(dst) <- recv_msgs.(dst) + 1;
        incr messages;
        total_words := !total_words + words
      end)
    packets;
  let load = ref 0 in
  for i = 0 to t.n - 1 do
    load := max !load (max sent.(i) received.(i))
  done;
  if !load > 0 then begin
    attribute t ~label ~sent ~recv:received ~sent_msgs ~recv_msgs;
    let rounds = Float.of_int ((!load + t.n - 1) / t.n) in
    book t ~kind:Exchange ~label ~rounds ~messages:!messages
      ~words:!total_words ~max_load:!load ~sent ~recv:received
  end

let broadcast t ~label ~src ~words =
  if src < 0 || src >= t.n then invalid_arg "Net.broadcast: bad source";
  if words < 0 then invalid_arg "Net.broadcast: negative payload";
  if words > 0 then
    (* Broadcast tree: src splits the payload into n shares of
       ceil(words/n) words each, then every machine rebroadcasts its share.
       Each step moves at most n * ceil(words/n) words through any machine,
       i.e. ceil(words/n) rounds per step; we book the standard
       O(ceil(W/n) + 1) accounting as max 1 (ceil(words/n)) rounds, folding
       the two-step tree's constant factor into the big-O (the same
       convention every other collective here uses). *)
    let rounds = Float.of_int (max 1 ((words + t.n - 1) / t.n)) in
    (* Attribution is the logical pattern — src emits its payload once, every
       other machine takes a copy — not the tree's relay hops, so the profile
       points at the source as the hot machine while the booked rounds keep
       the tree's balanced cost. *)
    let sent = Array.make t.n 0 and recv = Array.make t.n words in
    let sent_msgs = Array.make t.n 0 and recv_msgs = Array.make t.n 1 in
    sent.(src) <- words;
    recv.(src) <- 0;
    sent_msgs.(src) <- t.n - 1;
    recv_msgs.(src) <- 0;
    attribute t ~label ~sent ~recv ~sent_msgs ~recv_msgs;
    book t ~kind:Broadcast ~label ~rounds ~messages:(t.n - 1)
      ~words:(words * (t.n - 1))
      ~max_load:words ~sent ~recv

let all_to_all t ~label ~words_each =
  if words_each < 0 then invalid_arg "Net.all_to_all: negative payload";
  if words_each > 0 then begin
    let messages = t.n * (t.n - 1) in
    let per_machine = words_each * (t.n - 1) in
    let sent = Array.make t.n per_machine
    and recv = Array.make t.n per_machine in
    attribute t ~label ~sent ~recv
      ~sent_msgs:(Array.make t.n (t.n - 1))
      ~recv_msgs:(Array.make t.n (t.n - 1));
    book t ~kind:All_to_all ~label
      ~rounds:(Float.of_int (max 1 words_each))
      ~messages ~words:(messages * words_each) ~max_load:per_machine ~sent
      ~recv
  end

let aggregate t ~label ?(combinable = true) ~contributors ~dst words_each =
  if dst < 0 || dst >= t.n then invalid_arg "Net.aggregate: bad destination";
  if words_each < 0 then invalid_arg "Net.aggregate: negative payload";
  let k =
    List.fold_left
      (fun acc src ->
        if src < 0 || src >= t.n then invalid_arg "Net.aggregate: bad contributor";
        if src = dst then acc else acc + 1)
      0 contributors
  in
  if k > 0 && words_each > 0 then begin
    let total = k * words_each in
    let rounds =
      if combinable then Float.of_int (max 1 ((words_each + t.n - 1) / t.n))
      else Float.of_int ((total + t.n - 1) / t.n)
    in
    (* Each contributor emits its share; the destination takes delivery of
       one combined value when combining is possible, all [k] otherwise. *)
    let received = if combinable then words_each else total in
    let sent = Array.make t.n 0 and recv = Array.make t.n 0 in
    let sent_msgs = Array.make t.n 0 and recv_msgs = Array.make t.n 0 in
    List.iter
      (fun src ->
        if src <> dst then begin
          sent.(src) <- sent.(src) + words_each;
          sent_msgs.(src) <- sent_msgs.(src) + 1
        end)
      contributors;
    recv.(dst) <- received;
    recv_msgs.(dst) <- k;
    attribute t ~label ~sent ~recv ~sent_msgs ~recv_msgs;
    book t ~kind:Aggregate ~label ~rounds ~messages:k ~words:total
      ~max_load:(Array.fold_left max received sent)
      ~sent ~recv
  end

let charge t ~label rounds =
  if rounds < 0.0 then invalid_arg "Net.charge: negative rounds";
  book t ~kind:Charge ~label ~rounds ~messages:0 ~words:0 ~max_load:0

let charge_overhead t ~label rounds =
  charge t ~label rounds;
  t.overhead_rounds <- t.overhead_rounds +. rounds

let note_overhead t rounds =
  if rounds < 0.0 then invalid_arg "Net.note_overhead: negative rounds";
  t.overhead_rounds <- t.overhead_rounds +. rounds

let rounds t = t.total_rounds
let messages t = t.total_messages
let words t = t.total_words
let retransmits t = t.total_retransmits
let dropped t = t.total_dropped
let overhead_rounds t = t.overhead_rounds

(* --- reliable delivery on top of the fault layer --- *)

type delivery = Delivered | Corrupted | Lost

let retry_label label = label ^ ":retry"

(* Book [packets] (already validated) as one retransmission wave plus an
   exponential backoff wait, all under the [:retry] suffix; the extra rounds
   are also accumulated in [overhead_rounds]. Acks ride for free: one word
   per delivered packet always fits the per-machine O(n) round budget. *)
let book_retry t ~label ~attempt packets =
  let before = t.total_rounds in
  exchange t ~label:(retry_label label) packets;
  let backoff = Float.of_int (1 lsl min 10 (attempt - 1)) in
  book t ~kind:Charge ~label:(retry_label label) ~rounds:backoff ~messages:0
    ~words:0 ~max_load:0;
  let k = List.length packets in
  t.total_retransmits <- t.total_retransmits + k;
  Cc_obs.Metrics.incr ~by:k "net.retransmits";
  t.overhead_rounds <- t.overhead_rounds +. (t.total_rounds -. before)

let book_straggle t ~label f =
  let s = Fault.straggle_rounds f in
  if s > 0 then begin
    let rounds = Float.of_int s in
    book t ~kind:Charge ~label:(label ^ ":straggle") ~rounds ~messages:0
      ~words:0 ~max_load:0;
    t.overhead_rounds <- t.overhead_rounds +. rounds
  end

(* Deliver one wave of [pending] packet indices; returns the still-dropped
   subset. Fault decisions are drawn in index order, deterministically. *)
let judge_wave t f arr out pending =
  List.filter
    (fun i ->
      let { src; dst; words } = arr.(i) in
      if src = dst || words = 0 then begin
        out.(i) <- Delivered;
        false
      end
      else if Fault.is_crashed f src || Fault.is_crashed f dst then begin
        out.(i) <- Lost;
        t.total_dropped <- t.total_dropped + 1;
        Cc_obs.Metrics.incr "net.dropped";
        false
      end
      else
        match Fault.attempt f with
        | Fault.Deliver ->
            out.(i) <- Delivered;
            false
        | Fault.Corrupt ->
            (* Bit flips are invisible to the transport; detection (and any
               re-run) is the application's job. *)
            out.(i) <- Corrupted;
            false
        | Fault.Drop ->
            t.total_dropped <- t.total_dropped + 1;
            Cc_obs.Metrics.incr "net.dropped";
            true)
    pending

let reliable_exchange t ~label packets =
  match t.injected with
  | None ->
      exchange t ~label packets;
      Array.make (List.length packets) Delivered
  | Some f ->
      let arr = Array.of_list packets in
      let out = Array.make (Array.length arr) Delivered in
      exchange t ~label packets;
      book_straggle t ~label f;
      let pending = ref (List.init (Array.length arr) (fun i -> i)) in
      pending := judge_wave t f arr out !pending;
      let attempt = ref 0 in
      while !pending <> [] && !attempt < (Fault.spec_of f).Fault.max_retries do
        incr attempt;
        let wave = List.map (fun i -> arr.(i)) !pending in
        book_retry t ~label ~attempt:!attempt wave;
        Fault.note_retransmit f (List.length wave);
        pending := judge_wave t f arr out !pending
      done;
      List.iter (fun i -> out.(i) <- Lost) !pending;
      out

let reliable_broadcast t ~label ~src ~words =
  match t.injected with
  | None ->
      broadcast t ~label ~src ~words;
      Array.make t.n Delivered
  | Some f ->
      broadcast t ~label ~src ~words;
      book_straggle t ~label f;
      let out = Array.make t.n Delivered in
      if Fault.is_crashed f src then begin
        for dst = 0 to t.n - 1 do
          if dst <> src then begin
            out.(dst) <- Lost;
            t.total_dropped <- t.total_dropped + 1;
            Cc_obs.Metrics.incr "net.dropped"
          end
        done;
        out
      end
      else begin
        let arr =
          Array.init t.n (fun dst -> { src; dst; words = (if dst = src then 0 else words) })
        in
        let pending = ref (List.init t.n (fun i -> i)) in
        pending := judge_wave t f arr out !pending;
        let attempt = ref 0 in
        while !pending <> [] && !attempt < (Fault.spec_of f).Fault.max_retries do
          incr attempt;
          let wave = List.map (fun i -> arr.(i)) !pending in
          book_retry t ~label ~attempt:!attempt wave;
          Fault.note_retransmit f (List.length wave);
          pending := judge_wave t f arr out !pending
        done;
        List.iter (fun i -> out.(i) <- Lost) !pending;
        out
      end

let ledger t =
  Hashtbl.fold
    (fun label (e : entry) acc -> (label, e.rounds, e.messages, e.words) :: acc)
    t.by_label []
  |> List.sort (fun (l1, r1, _, _) (l2, r2, _, _) ->
         (* Descending rounds, ties broken by label so the ordering never
            depends on Hashtbl fold order. *)
         match compare r2 r1 with 0 -> compare l1 l2 | c -> c)

(* --- per-machine load profile --- *)

type machine_load = {
  machine : int;
  sent_words : int;
  recv_words : int;
  sent_messages : int;
  recv_messages : int;
  load : int;
}

type profile = {
  machines : int;
  per_machine : machine_load array;
  max_load : int;
  mean_load : float;
  p50_load : float;
  p95_load : float;
  imbalance : float;
  hot : (int * int) list;
}

let obs_profile t =
  let rows =
    Hashtbl.fold
      (fun label l acc ->
        {
          Cc_obs.Profile.label;
          sent = Array.copy l.lane_sent;
          recv = Array.copy l.lane_recv;
        }
        :: acc)
      t.by_machine []
  in
  Cc_obs.Profile.create ~machines:t.n ~total_words:t.total_words rows

let load_profile ?(top_k = 3) t =
  let p = obs_profile t in
  let per_machine =
    Array.init t.n (fun i ->
        {
          machine = i;
          sent_words = t.m_sent_words.(i);
          recv_words = t.m_recv_words.(i);
          sent_messages = t.m_sent_messages.(i);
          recv_messages = t.m_recv_messages.(i);
          load = max t.m_sent_words.(i) t.m_recv_words.(i);
        })
  in
  {
    machines = t.n;
    per_machine;
    max_load = Cc_obs.Profile.max_load p;
    mean_load = Cc_obs.Profile.mean_load p;
    p50_load = Cc_obs.Profile.quantile p 0.5;
    p95_load = Cc_obs.Profile.quantile p 0.95;
    imbalance = Cc_obs.Profile.imbalance p;
    hot = Cc_obs.Profile.hot ~k:top_k p;
  }

let pp_profile fmt t =
  Format.pp_print_string fmt (Cc_obs.Profile.render (obs_profile t))

let reset t =
  t.total_rounds <- 0.0;
  t.total_messages <- 0;
  t.total_words <- 0;
  t.total_retransmits <- 0;
  t.total_dropped <- 0;
  t.overhead_rounds <- 0.0;
  Hashtbl.reset t.by_label;
  (* Per-machine profile state is part of the ledger and resets with it; the
     observability sink is wiring, not state, and stays installed. *)
  Hashtbl.reset t.by_machine;
  Array.fill t.m_sent_words 0 t.n 0;
  Array.fill t.m_recv_words 0 t.n 0;
  Array.fill t.m_sent_messages 0 t.n 0;
  Array.fill t.m_recv_messages 0 t.n 0

let word_bits t = max 8 (int_of_float (Float.ceil (Float.log2 (Float.of_int t.n))))

let words_for_bits t bits =
  if bits < 0 then invalid_arg "Net.words_for_bits: negative bits";
  if bits = 0 then 0 else max 1 ((bits + word_bits t - 1) / word_bits t)

let entry_words t =
  let lg = int_of_float (Float.ceil (Float.log2 (Float.of_int t.n))) in
  max 1 (words_for_bits t (lg * lg))

let pp_totals fmt t =
  Format.fprintf fmt "total rounds: %.1f, messages: %d, words: %d"
    t.total_rounds t.total_messages t.total_words

let pp_fault_summary fmt t =
  Format.fprintf fmt "faults: %d retransmits, %d dropped, %.1f overhead rounds"
    t.total_retransmits t.total_dropped t.overhead_rounds

let ledger_table t =
  let module Table = Cc_util.Table in
  let table =
    Table.create ~title:"per-label round ledger"
      ~columns:[ "label"; "rounds"; "share"; "msgs"; "words" ]
  in
  List.iter
    (fun (label, r, m, w) ->
      Table.add_row table
        [
          label;
          Table.cell_float ~decimals:1 r;
          (if t.total_rounds > 0.0 then
             Printf.sprintf "%.1f%%" (100.0 *. r /. t.total_rounds)
           else "-");
          Table.cell_int m;
          Table.cell_int w;
        ])
    (ledger t);
  table

let pp_ledger fmt t =
  Format.fprintf fmt "@[<v>%a@," pp_totals t;
  if t.total_retransmits > 0 || t.total_dropped > 0 || t.overhead_rounds > 0.0
  then Format.fprintf fmt "%a@," pp_fault_summary t;
  Format.fprintf fmt "%s@]" (Cc_util.Table.render (ledger_table t))

(* --- flight recorder / invariant glue ---

   Cc_obs sits below this library, so the recorder and the invariant
   monitor define their own canonical record type; these adapters subscribe
   them to the event bus and translate each event. *)

let attach_recorder t r =
  add_sink t (fun e ->
      Cc_obs.Recorder.add r ~kind:(kind_name e.kind) ~label:e.label
        ~rounds:e.rounds ~round_end:e.total_rounds ~messages:e.messages
        ~words:e.words ~max_load:e.max_load ~sent:e.sent ~recv:e.recv
        ~retransmits:e.total_retransmits ~dropped:e.total_dropped)

let attach_invariant t inv =
  let seq = ref 0 in
  add_sink t (fun e ->
      let r =
        {
          Cc_obs.Recorder.seq = !seq;
          kind = kind_name e.kind;
          label = e.label;
          round_start = e.total_rounds -. e.rounds;
          round_end = e.total_rounds;
          rounds = e.rounds;
          messages = e.messages;
          words = e.words;
          max_load = e.max_load;
          sent = e.sent;
          recv = e.recv;
          retransmits = e.total_retransmits;
          dropped = e.total_dropped;
        }
      in
      incr seq;
      ignore (Cc_obs.Invariant.observe inv r))

let ledger_violations t inv =
  Cc_obs.Invariant.check_ledger inv ~ledger:(ledger t) ~rounds:t.total_rounds
    ~messages:t.total_messages ~words:t.total_words
