(** Deterministic fault injection for the Congested Clique simulator.

    The paper's model (Section 2.1) assumes a perfectly reliable synchronous
    clique. This module relaxes that assumption behind the {!Net} primitives:
    a [Fault.t] carries a seeded schedule of per-message drops, payload
    corruption (bit flips in fixed-point words), crash-stop machine failures
    at round boundaries, and straggler delays. Every decision is drawn from a
    private {!Cc_util.Prng} stream derived from [spec.seed], so a run is
    bit-reproducible from [(algorithm seed, fault seed)] and the fault stream
    never perturbs the algorithm's own randomness.

    The transport-level recovery (ack + bounded retransmission with
    exponential round backoff) lives in {!Net.reliable_exchange} /
    {!Net.reliable_broadcast}; algorithm-level healing (tuple re-routing,
    iteration re-runs, sequential fallback) lives in [Cc_doubling.Doubling]
    and [Cc_sampler.Sampler] and reports through the {!health} type. *)

(** {1 Fault specification} *)

type spec = {
  drop_prob : float;  (** per-transmission drop probability, in [0, 1). *)
  corrupt_prob : float;
      (** per-transmission probability of undetected payload corruption
          (a bit flip in one fixed-point word), in [0, 1). *)
  straggle_prob : float;
      (** per-primitive probability that a straggler delays the round, in
          [0, 1). Each straggle costs a geometric number of extra rounds. *)
  max_retries : int;
      (** retransmission budget per packet before it is declared lost. *)
  crashes : (int * float) list;
      (** crash-stop schedule: [(machine, round)] pairs; the machine fails
          permanently at the first round boundary at or after [round]. *)
  seed : int;  (** seed of the private fault PRNG stream. *)
}

(** [default_spec] injects nothing: all probabilities 0, no crashes,
    [max_retries = 8], [seed = 0]. *)
val default_spec : spec

(** [spec ?drop_prob ?corrupt_prob ?straggle_prob ?max_retries ?crashes ?seed ()]
    builds a [spec] by overriding fields of {!default_spec}. *)
val spec :
  ?drop_prob:float ->
  ?corrupt_prob:float ->
  ?straggle_prob:float ->
  ?max_retries:int ->
  ?crashes:(int * float) list ->
  ?seed:int ->
  unit ->
  spec

type t

(** [create spec] builds a fault injector.
    @raise Invalid_argument if a probability is outside [0, 1) or
    [max_retries < 0]. *)
val create : spec -> t

val spec_of : t -> spec

(** {1 Per-transmission decisions}

    Decisions are consumed in call order from the private stream; callers
    must evaluate packets in a deterministic order. *)

type verdict = Deliver | Drop | Corrupt

(** [attempt t] draws the fate of one transmission attempt (crash state is
    the caller's concern — see {!is_crashed}). Updates the drop/corruption
    counters. *)
val attempt : t -> verdict

(** [corrupt_word t w] flips one uniformly chosen bit among the low 62 bits
    of the fixed-point word [w] — the payload-level counterpart of a
    [Corrupt] verdict, for callers that materialize payloads. *)
val corrupt_word : t -> int -> int

(** [straggle_rounds t] is the straggler delay for one primitive: 0 with
    probability [1 - straggle_prob], otherwise 1 + Geometric(1/2) extra
    rounds. *)
val straggle_rounds : t -> int

(** {1 Crash-stop failures} *)

(** [advance t ~now] is called at every round boundary ([now] = total rounds
    booked so far): machines whose scheduled crash round is [<= now] fail
    permanently. *)
val advance : t -> now:float -> unit

(** [crash_now t m] crashes machine [m] immediately (for tests). *)
val crash_now : t -> int -> unit

val is_crashed : t -> int -> bool

(** [crashed t] is the sorted list of failed machines. *)
val crashed : t -> int list

val any_crashed : t -> bool

(** [next_live t ~n from] is the first non-crashed machine at or after [from]
    (mod [n]), scanning circularly, or [None] iff every machine in [0, n) has
    failed.

    Contract: [from] may be any integer (it is reduced mod [n], so negative
    and out-of-range start indices are fine), and the all-crashed answer is
    [None] {e for every} start index — the result never depends on where the
    circular scan begins. Machines outside [0, n) in the crash schedule are
    ignored.
    @raise Invalid_argument if [n <= 0]. *)
val next_live : t -> n:int -> int -> int option

(** {1 Recovery metrics}

    Monotone counters across the injector's lifetime; algorithms snapshot
    them before/after a run to report {!health}. *)

val drops : t -> int  (** transmission attempts that were dropped. *)

val corruptions : t -> int  (** transmission attempts that were corrupted. *)

val retransmits : t -> int  (** packets retransmitted by the reliable layer. *)

val reroutes : t -> int  (** tuples re-routed around a crashed machine. *)

val reruns : t -> int  (** iteration / phase re-runs forced by corruption. *)

val note_retransmit : t -> int -> unit
val note_reroute : t -> int -> unit
val note_rerun : t -> unit

(** {1 Structured recovery outcomes} *)

type failure = { reason : string; crashed : int list }

type health =
  | Healthy  (** no fault touched the run. *)
  | Healed of { retransmits : int; reroutes : int; reruns : int }
      (** faults occurred and were fully recovered; the output is exactly as
          trustworthy as a fault-free run. *)
  | Unrecoverable of failure
      (** the distributed computation could not be healed; the caller
          degraded to a fallback (documented per algorithm) instead of
          raising. *)

(** [health_of t ~before:(retransmits, reroutes, reruns)] classifies a run
    from counter deltas: [Healthy] if nothing changed, else [Healed]. *)
val health_of : t -> before:int * int * int -> health

(** [snapshot t] is [(retransmits, reroutes, reruns)] for {!health_of}. *)
val snapshot : t -> int * int * int

val pp_health : Format.formatter -> health -> unit
