(** Matrix multiplication in the Congested Clique.

    Input/output convention follows Censor-Hillel et al. [14] as used by the
    paper: each machine i holds row i of each operand and learns row i of the
    product. Two cost backends:

    - [Charged]: the product is computed locally and
      [coeff * n^alpha * entry_words] rounds are booked — the paper's
      accounting, with alpha = 0.158 by default (their Theorem for semiring-
      free matrix exponent in the clique). This is the backend the
      sublinear-sampler benches use.
    - [Routed_broadcast]: a fully metered naive algorithm in which every
      machine broadcasts its row of the right operand so each machine can
      form its product row locally — Θ(n · entry_words) rounds. Included as
      the baseline exhibiting why fast matmul matters (and to show that the
      simulator can route everything explicitly).
    - [Routed_semiring]: the 3D semiring algorithm of [14] at
      Θ(n^(1/3) · entry_words) rounds, metered by its real per-machine block
      loads — the best exponent achievable without fast (ring) matrix
      multiplication.

    [power_table] implements the Initialization Step of Algorithm 1: compute
    P, P^2, P^4, ..., P^(2^levels) and transpose-distribute so each machine
    also holds its column of every power ("Every Machine i sends P^k[i,j] to
    machine j"). *)

type backend =
  | Charged of { alpha : float; coeff : float }
  | Routed_broadcast
  | Routed_semiring
      (** the semiring algorithm of Censor-Hillel et al. [14]: machines are
          arranged in an n^(1/3) x n^(1/3) x n^(1/3) cube, every machine
          receives two n^(2/3) x n^(2/3) operand blocks and sends n^(4/3)
          partial products for combining — O(n^(1/3)) rounds per entry word,
          metered as per-machine block loads. (The paper's O(n^0.158) needs
          Strassen-style ring algorithms; that cost is available through
          [Charged].) *)

(** The current Congested Clique matrix-multiplication exponent,
    [1 - 2/omega] with omega ~ 2.372: 0.158. *)
val default_alpha : float

(** [charged ()] is [Charged { alpha = default_alpha; coeff = 1.0 }]. *)
val charged : ?alpha:float -> ?coeff:float -> unit -> backend

(** [backend_name b] is a short stable name (["charged"],
    ["routed-broadcast"], ["routed-semiring"]) for traces and reports. *)
val backend_name : backend -> string

(** [mul net backend a b] returns the product and books its rounds under
    label ["matmul"]. Operands need not be n x n: off-size products (the
    |S| x |S| Schur matrices of later phases, the 2n x 2n auxiliary chain)
    are booked at [mul_cost ~dim]. *)
val mul : Net.t -> backend -> Cc_linalg.Mat.t -> Cc_linalg.Mat.t -> Cc_linalg.Mat.t

(** [rounds_estimate net backend] is the round cost a single multiplication
    will book — used by benches to display the analytic charge. *)
val rounds_estimate : Net.t -> backend -> float

(** [mul_cost net backend ~dim] is the round cost of multiplying [dim x dim]
    matrices on this clique (dim may exceed n, e.g. the 2n-vertex auxiliary
    graph G' of Corollary 3 — each machine then simulates O(dim/n) rows). *)
val mul_cost : Net.t -> backend -> dim:int -> float

(** [book_mul net backend ~dim] books exactly the Net events [mul] would emit
    for a [dim x dim] product — same primitives, labels, and word counts —
    without performing any arithmetic. The plan cache's warm path replays
    bookings through this mirror so a cache hit leaves the recorder digest
    byte-identical to the cold run. *)
val book_mul : Net.t -> backend -> dim:int -> unit

(** [power_table net backend ?bits m ~levels] returns
    [[| m; m^2; m^4; ...; m^(2^levels) |]] (length [levels + 1]), squaring
    with [backend] and optionally truncating entries to [bits] fractional
    bits after every squaring (Lemma 3's rounded powering). Also books the
    column-redistribution ([all_to_all]) after each level, matching
    Algorithm 1 lines 2–3.

    With [?reuse:table] (a table previously produced for the same matrix,
    bits, and levels — the caller's responsibility), the arithmetic is
    skipped and [table] is returned, but the full booking sequence (the
    transpose redistributions and each squaring's rounds) is still charged:
    a prepared plan saves compute, not communication, and the recorder
    digest is identical either way. *)
val power_table :
  Net.t ->
  backend ->
  ?bits:int ->
  ?reuse:Cc_linalg.Mat.t array ->
  Cc_linalg.Mat.t ->
  levels:int ->
  Cc_linalg.Mat.t array

(** [power_table_pure ?bits m ~levels] is the arithmetic of [power_table]
    with no clique attached: used by [prepare] phases that precompute a
    plan's power table outside any metered run. Combining
    [power_table_pure] at prepare time with [power_table ~reuse] at draw
    time yields the same matrices and the same bookings as a cold
    [power_table]. *)
val power_table_pure :
  ?bits:int -> Cc_linalg.Mat.t -> levels:int -> Cc_linalg.Mat.t array
