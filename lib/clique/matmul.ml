module Mat = Cc_linalg.Mat
module Fixed = Cc_linalg.Fixed

type backend =
  | Charged of { alpha : float; coeff : float }
  | Routed_broadcast
  | Routed_semiring

let default_alpha = 0.158

let charged ?(alpha = default_alpha) ?(coeff = 1.0) () = Charged { alpha; coeff }

let backend_name = function
  | Charged _ -> "charged"
  | Routed_broadcast -> "routed-broadcast"
  | Routed_semiring -> "routed-semiring"

let mul_cost net backend ~dim =
  let nf = Float.of_int (Net.n net) in
  let df = Float.of_int dim in
  let ew = Float.of_int (Net.entry_words net) in
  (* A dim x dim product on n machines: (dim/n)^2 row-block products, each at
     the clique's native n x n cost. *)
  let blocks = Float.max 1.0 ((df /. nf) ** 2.0) in
  match backend with
  | Charged { alpha; coeff } ->
      Float.max 1.0 (coeff *. blocks *. (nf ** alpha) *. ew)
  | Routed_broadcast -> blocks *. nf *. ew
  | Routed_semiring ->
      (* Each machine receives two n^(2/3) x n^(2/3) blocks and emits
         n^(4/3) partial products: ceil(3 n^(4/3) ew / n) = 3 n^(1/3) ew. *)
      Float.max 1.0 (blocks *. 3.0 *. (nf ** (1.0 /. 3.0)) *. ew)

let rounds_estimate net backend = mul_cost net backend ~dim:(Net.n net)

(* [book_mul] is the communication half of [mul]: it books exactly the Net
   events a [dim x dim] product emits — same primitives, same labels, same
   word counts — without touching any matrix. Plan-cache hits replay bookings
   through this mirror, so a warm draw's recorder digest chains over the
   identical event sequence as the cold run that computed the product. Keep
   the two in lockstep: any booking change in [mul] must land here too. *)
let book_mul net backend ~dim =
  let n = Net.n net in
  match backend with
  | Charged _ -> Net.charge net ~label:"matmul" (mul_cost net backend ~dim)
  | Routed_broadcast when dim = n ->
      (* Machine k broadcasts its row of b (n entries) to all machines. *)
      let ew = Net.entry_words net in
      let packets = ref [] in
      for k = 0 to n - 1 do
        for j = 0 to n - 1 do
          if j <> k then packets := { Net.src = k; dst = j; words = n * ew } :: !packets
        done
      done;
      Net.exchange net ~label:"matmul" !packets
  | Routed_broadcast ->
      (* Off-size operands (e.g. |S| x |S| in later phases, or the 2n x 2n
         auxiliary chain): book the analytic cost of the same broadcast
         pattern with rows shared round-robin across machines. *)
      Net.charge net ~label:"matmul" (mul_cost net backend ~dim)
  | Routed_semiring when dim = n ->
      (* 3D decomposition: machine (i,j,l) of the n^(1/3)-cube multiplies
         block A[i,l] by block B[l,j]. Meter the real loads: every machine
         receives 2 b^2 operand words and sends/receives b^2 partial-product
         words for the combine step, b = n^(2/3). *)
      let ew = Net.entry_words net in
      let b = int_of_float (Float.ceil (Float.of_int n ** (2.0 /. 3.0))) in
      let per_machine = 3 * b * b * ew in
      let sent = Array.make n per_machine and recv = Array.make n per_machine in
      let load = Array.fold_left max 0 (Array.append sent recv) in
      Net.charge net ~label:"matmul" (Float.of_int ((load + n - 1) / n))
  | Routed_semiring -> Net.charge net ~label:"matmul" (mul_cost net backend ~dim)

let mul net backend a b =
  let dim = Mat.rows a in
  if Mat.cols a <> dim || Mat.rows b <> dim || Mat.cols b <> dim then
    invalid_arg "Matmul.mul: operands must be square and equal-sized";
  Cc_obs.Metrics.incr "matmul.muls";
  Cc_obs.Trace.with_span "matmul.mul"
    ~args:
      [
        ("dim", string_of_int dim);
        ("backend", backend_name backend);
        ("domains", string_of_int (Cc_engine.domains (Cc_engine.get ())));
      ]
  @@ fun () ->
  book_mul net backend ~dim;
  Mat.mul a b

let power_table net backend ?bits ?reuse m ~levels =
  if Mat.rows m <> Mat.cols m then
    invalid_arg "Matmul.power_table: matrix must be square";
  if levels < 0 then invalid_arg "Matmul.power_table: negative levels";
  (match reuse with
  | Some t when Array.length t <> levels + 1 ->
      invalid_arg "Matmul.power_table: reuse table has wrong length"
  | _ -> ());
  Cc_obs.Trace.with_span "matmul.power_table"
    ~args:
      [
        ("dim", string_of_int (Mat.rows m));
        ("levels", string_of_int levels);
        ("backend", backend_name backend);
        ("reuse", string_of_bool (reuse <> None));
      ]
  @@ fun () ->
  match reuse with
  | Some cached ->
      (* Factorization reuse: the powers are already known (a prepared plan
         holds them), but the clique still pays for moving them — replay the
         identical booking sequence, skip the arithmetic. Pure compute emits
         no Net events, so the recorder digest chains identically either
         way. *)
      Cc_obs.Metrics.incr "matmul.power_table.reused";
      Net.all_to_all net ~label:"power-table transpose"
        ~words_each:(Net.entry_words net);
      for _ = 1 to levels do
        book_mul net backend ~dim:(Mat.rows m);
        Net.all_to_all net ~label:"power-table transpose"
          ~words_each:(Net.entry_words net)
      done;
      cached
  | None ->
      let maybe_round x =
        match bits with None -> x | Some b -> Fixed.round_mat ~bits:b x
      in
      let table = Array.make (levels + 1) (maybe_round m) in
      (* Column redistribution for the base matrix too (machine i sends
         P[i,j] to machine j). *)
      Net.all_to_all net ~label:"power-table transpose"
        ~words_each:(Net.entry_words net);
      for i = 1 to levels do
        table.(i) <- maybe_round (mul net backend table.(i - 1) table.(i - 1));
        Net.all_to_all net ~label:"power-table transpose"
          ~words_each:(Net.entry_words net)
      done;
      table

let power_table_pure ?bits m ~levels =
  if Mat.rows m <> Mat.cols m then
    invalid_arg "Matmul.power_table_pure: matrix must be square";
  if levels < 0 then invalid_arg "Matmul.power_table_pure: negative levels";
  let maybe_round x =
    match bits with None -> x | Some b -> Fixed.round_mat ~bits:b x
  in
  let table = Array.make (levels + 1) (maybe_round m) in
  for i = 1 to levels do
    table.(i) <- maybe_round (Mat.mul table.(i - 1) table.(i - 1))
  done;
  table
