module Prng = Cc_util.Prng

type spec = {
  drop_prob : float;
  corrupt_prob : float;
  straggle_prob : float;
  max_retries : int;
  crashes : (int * float) list;
  seed : int;
}

let default_spec =
  {
    drop_prob = 0.0;
    corrupt_prob = 0.0;
    straggle_prob = 0.0;
    max_retries = 8;
    crashes = [];
    seed = 0;
  }

let spec ?(drop_prob = 0.0) ?(corrupt_prob = 0.0) ?(straggle_prob = 0.0)
    ?(max_retries = 8) ?(crashes = []) ?(seed = 0) () =
  { drop_prob; corrupt_prob; straggle_prob; max_retries; crashes; seed }

type t = {
  spec : spec;
  prng : Prng.t;
  crashed_set : (int, unit) Hashtbl.t;
  mutable pending_crashes : (int * float) list; (* sorted by round *)
  mutable n_drops : int;
  mutable n_corruptions : int;
  mutable n_retransmits : int;
  mutable n_reroutes : int;
  mutable n_reruns : int;
}

let check_prob name p =
  if p < 0.0 || p >= 1.0 then
    invalid_arg (Printf.sprintf "Fault.create: %s must be in [0, 1)" name)

let create spec =
  check_prob "drop_prob" spec.drop_prob;
  check_prob "corrupt_prob" spec.corrupt_prob;
  check_prob "straggle_prob" spec.straggle_prob;
  if spec.max_retries < 0 then invalid_arg "Fault.create: max_retries < 0";
  List.iter
    (fun (m, r) ->
      if m < 0 then invalid_arg "Fault.create: negative machine in crash schedule";
      if r < 0.0 then invalid_arg "Fault.create: negative crash round")
    spec.crashes;
  {
    spec;
    (* Decorrelate the fault stream from same-seed algorithm streams. *)
    prng = Prng.create ~seed:(spec.seed lxor 0xfa17);
    crashed_set = Hashtbl.create 4;
    pending_crashes =
      List.sort (fun (_, r1) (_, r2) -> compare r1 r2) spec.crashes;
    n_drops = 0;
    n_corruptions = 0;
    n_retransmits = 0;
    n_reroutes = 0;
    n_reruns = 0;
  }

let spec_of t = t.spec

type verdict = Deliver | Drop | Corrupt

let attempt t =
  if t.spec.drop_prob = 0.0 && t.spec.corrupt_prob = 0.0 then Deliver
  else begin
    let x = Prng.float t.prng 1.0 in
    if x < t.spec.drop_prob then begin
      t.n_drops <- t.n_drops + 1;
      Drop
    end
    else if x < t.spec.drop_prob +. t.spec.corrupt_prob then begin
      t.n_corruptions <- t.n_corruptions + 1;
      Corrupt
    end
    else Deliver
  end

let corrupt_word t w = w lxor (1 lsl (Prng.int t.prng 62))

let straggle_rounds t =
  if t.spec.straggle_prob = 0.0 then 0
  else if Prng.float t.prng 1.0 >= t.spec.straggle_prob then 0
  else begin
    (* 1 + Geometric(1/2): a slow machine holds the round barrier. *)
    let rec go acc = if Prng.bool t.prng then go (acc + 1) else acc in
    go 1
  end

let crash_now t m = Hashtbl.replace t.crashed_set m ()

let advance t ~now =
  let rec fire = function
    | (m, r) :: rest when r <= now ->
        crash_now t m;
        fire rest
    | rest -> t.pending_crashes <- rest
  in
  fire t.pending_crashes

let is_crashed t m = Hashtbl.mem t.crashed_set m
let crashed t = List.sort compare (Hashtbl.fold (fun m () acc -> m :: acc) t.crashed_set [])
let any_crashed t = Hashtbl.length t.crashed_set > 0

let next_live t ~n from =
  if n <= 0 then invalid_arg "Fault.next_live: n must be positive";
  (* Deterministic early exit when the whole clique is down: every start
     index (negative, in range, or >= n) must yield None, not depend on
     where the circular scan happens to begin. Crash schedules may name
     machines outside [0, n), so count only the in-range ones. *)
  let crashed_in_range =
    Hashtbl.fold
      (fun m () acc -> if m >= 0 && m < n then acc + 1 else acc)
      t.crashed_set 0
  in
  if crashed_in_range >= n then None
  else
    let rec go i remaining =
      if remaining = 0 then None
      else if not (is_crashed t (i mod n)) then Some (i mod n)
      else go (i + 1) (remaining - 1)
    in
    go (((from mod n) + n) mod n) n

let drops t = t.n_drops
let corruptions t = t.n_corruptions
let retransmits t = t.n_retransmits
let reroutes t = t.n_reroutes
let reruns t = t.n_reruns
let note_retransmit t k = t.n_retransmits <- t.n_retransmits + k
let note_reroute t k = t.n_reroutes <- t.n_reroutes + k
let note_rerun t = t.n_reruns <- t.n_reruns + 1

type failure = { reason : string; crashed : int list }

type health =
  | Healthy
  | Healed of { retransmits : int; reroutes : int; reruns : int }
  | Unrecoverable of failure

let snapshot t = (t.n_retransmits, t.n_reroutes, t.n_reruns)

let health_of t ~before:(rt0, rr0, ru0) =
  let rt = t.n_retransmits - rt0
  and rr = t.n_reroutes - rr0
  and ru = t.n_reruns - ru0 in
  if rt = 0 && rr = 0 && ru = 0 then Healthy
  else Healed { retransmits = rt; reroutes = rr; reruns = ru }

let pp_health fmt = function
  | Healthy -> Format.fprintf fmt "healthy"
  | Healed { retransmits; reroutes; reruns } ->
      Format.fprintf fmt "healed (retransmits=%d, reroutes=%d, reruns=%d)"
        retransmits reroutes reruns
  | Unrecoverable { reason; crashed = [] } ->
      Format.fprintf fmt "unrecoverable: %s" reason
  | Unrecoverable { reason; crashed } ->
      Format.fprintf fmt "unrecoverable: %s (crashed machines: %s)" reason
        (String.concat ", " (List.map string_of_int crashed))
