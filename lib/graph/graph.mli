(** Simple, undirected, weighted graphs.

    The paper's input is an unweighted simple graph, but every later phase
    works on the Schur complement — an edge-weighted graph — so the whole
    stack is written for positive edge weights. Random walks transition along
    incident edges with probability proportional to edge weight (footnote 2 of
    the paper). Vertices are [0 .. n-1]. *)

type t

(** {1 Construction} *)

(** [of_edges ~n edges] builds a graph on [n] vertices from weighted edges
    [(u, v, w)]. @raise Invalid_argument on self-loops, duplicate edges,
    nonpositive weights, or out-of-range endpoints. *)
val of_edges : n:int -> (int * int * float) list -> t

(** [of_unweighted_edges ~n edges] gives every edge weight 1. *)
val of_unweighted_edges : n:int -> (int * int) list -> t

(** [of_adjacency_matrix a] interprets symmetric nonnegative [a] as edge
    weights; zero means no edge. @raise Invalid_argument if not symmetric or
    has nonzero diagonal. *)
val of_adjacency_matrix : Cc_linalg.Mat.t -> t

(** {1 Queries} *)

val n : t -> int
val num_edges : t -> int

(** [edges g] lists each edge once as [(u, v, w)] with [u < v]. *)
val edges : t -> (int * int * float) list

(** [neighbors g u] is the array of [(v, w)] incident to [u]. *)
val neighbors : t -> int -> (int * float) array

(** [degree g u] is the number of incident edges. *)
val degree : t -> int -> int

(** [weighted_degree g u] is the total incident weight. *)
val weighted_degree : t -> int -> float

val has_edge : t -> int -> int -> bool

(** [edge_weight g u v] is the weight, or 0 if absent. *)
val edge_weight : t -> int -> int -> float

(** [deg_in g u ~members] counts neighbors of [u] inside the vertex set given
    by the [members] characteristic array — the paper's [deg_S(u)]
    (unweighted count, as used by Algorithm 4 on the original graph G). *)
val deg_in : t -> int -> members:bool array -> int

(** [is_connected g] *)
val is_connected : t -> bool

(** [total_weight g] is the sum of edge weights. *)
val total_weight : t -> float

(** {1 Derived matrices} *)

(** [transition_matrix g] is the random-walk matrix P with
    [P(u,v) = w(u,v) / weighted_degree u]. Rows of isolated vertices are
    self-loops. *)
val transition_matrix : t -> Cc_linalg.Mat.t

(** [adjacency_matrix g] *)
val adjacency_matrix : t -> Cc_linalg.Mat.t

(** [laplacian g] is L = D - A with weighted degrees. *)
val laplacian : t -> Cc_linalg.Mat.t

(** [of_laplacian l] reconstructs the weighted graph from a Laplacian
    (off-diagonal entries are negated weights); entries with magnitude below
    [tol] (default 1e-9) are treated as non-edges. *)
val of_laplacian : ?tol:float -> Cc_linalg.Mat.t -> t

(** {1 Electrical quantities} *)

(** [effective_resistance g u v] between two distinct vertices of a connected
    graph, via a Laplacian solve. *)
val effective_resistance : t -> int -> int -> float

(** {1 Identity} *)

(** [fingerprint g] is a canonical digest of the graph ("fnv64:<16 hex>"):
    FNV-1a 64 over the vertex count and the sorted edge list with weights at
    full precision. Edge-order permutations of the same graph fingerprint
    identically; any weight or topology change does not. Shared by the
    ccserve plan cache and [Cc_audit]'s graph-identity check. *)
val fingerprint : t -> string

(** {1 Serialization} *)

(** [to_string g] / [of_string s]: a line-oriented format
    ("n <n>" then "e <u> <v> <w>" lines) for the CLI. *)
val to_string : t -> string

val of_string : string -> t
val pp : Format.formatter -> t -> unit
