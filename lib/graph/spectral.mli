(** Spectral quantities of the random walk: gap, mixing time.

    The paper's two algorithms split the world by cover time, and cover time
    is governed by the walk's spectral gap (expanders: constant gap, hence
    O(n log n) cover; lollipops: Theta(1/n^2)-scale gap). This module
    computes the relevant eigenvalues by power iteration on the symmetrized
    walk matrix [N = D^{-1/2} A D^{-1/2}] (similar to P, so same spectrum)
    and derives standard mixing estimates — used by bench E9+ to connect the
    measured cover times to spectra, and by tests on families with known
    eigenvalues. *)

(** [second_eigenvalue ?iters ?seed g] is lambda_2 of the walk matrix of the
    connected graph [g] (power iteration with deflation of the stationary
    eigenvector; [iters] defaults to 10_000). *)
val second_eigenvalue : ?iters:int -> ?seed:int -> Graph.t -> float

(** [smallest_eigenvalue ?iters ?seed g] is lambda_n (possibly -1 on
    bipartite graphs), via power iteration on a shifted matrix. *)
val smallest_eigenvalue : ?iters:int -> ?seed:int -> Graph.t -> float

(** [gap ?iters ?seed g] is the {e lazy} spectral gap
    [(1 - lambda_2) / 2] — the gap of (I+P)/2, insensitive to
    bipartiteness, matching the sampler's lazy default. *)
val gap : ?iters:int -> ?seed:int -> Graph.t -> float

(** [mixing_time_bound ?iters ?seed g ~eps] is the standard upper estimate
    [log(n / (eps * pi_min)) / gap] on the lazy chain's eps-mixing time. *)
val mixing_time_bound : ?iters:int -> ?seed:int -> Graph.t -> eps:float -> float
