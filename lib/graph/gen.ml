module Prng = Cc_util.Prng

let path n =
  if n < 2 then invalid_arg "Gen.path: n < 2";
  Graph.of_unweighted_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: n < 3";
  Graph.of_unweighted_edges ~n
    (List.init n (fun i -> (i, (i + 1) mod n)))

let complete n =
  if n < 2 then invalid_arg "Gen.complete: n < 2";
  let edge_list = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edge_list := (u, v) :: !edge_list
    done
  done;
  Graph.of_unweighted_edges ~n !edge_list

let star n =
  if n < 2 then invalid_arg "Gen.star: n < 2";
  Graph.of_unweighted_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 || rows * cols < 2 then invalid_arg "Gen.grid";
  let id r c = (r * cols) + c in
  let edge_list = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edge_list := (id r c, id r (c + 1)) :: !edge_list;
      if r + 1 < rows then edge_list := (id r c, id (r + 1) c) :: !edge_list
    done
  done;
  Graph.of_unweighted_edges ~n:(rows * cols) !edge_list

let binary_tree n =
  if n < 2 then invalid_arg "Gen.binary_tree: n < 2";
  Graph.of_unweighted_edges ~n
    (List.init (n - 1) (fun i -> (((i + 1) - 1) / 2, i + 1)))

let lollipop ~clique ~tail =
  if clique < 2 || tail < 1 then invalid_arg "Gen.lollipop";
  let n = clique + tail in
  let edge_list = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edge_list := (u, v) :: !edge_list
    done
  done;
  (* Attach the tail path to clique vertex 0. *)
  edge_list := (0, clique) :: !edge_list;
  for i = clique to n - 2 do
    edge_list := (i, i + 1) :: !edge_list
  done;
  Graph.of_unweighted_edges ~n !edge_list

let barbell k =
  if k < 2 then invalid_arg "Gen.barbell";
  let n = 2 * k in
  let edge_list = ref [] in
  let add_clique offset =
    for u = 0 to k - 1 do
      for v = u + 1 to k - 1 do
        edge_list := (offset + u, offset + v) :: !edge_list
      done
    done
  in
  add_clique 0;
  add_clique k;
  edge_list := (k - 1, k) :: !edge_list;
  Graph.of_unweighted_edges ~n !edge_list

let erdos_renyi prng ~n ~p =
  if n < 2 then invalid_arg "Gen.erdos_renyi: n < 2";
  if p < 0.0 || p > 1.0 then invalid_arg "Gen.erdos_renyi: p out of range";
  let edge_list = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.float prng 1.0 < p then edge_list := (u, v) :: !edge_list
    done
  done;
  Graph.of_unweighted_edges ~n !edge_list

let erdos_renyi_connected prng ~n ~p =
  let rec go attempts =
    if attempts = 0 then
      failwith "Gen.erdos_renyi_connected: too many disconnected samples";
    let g = erdos_renyi prng ~n ~p in
    if Graph.num_edges g > 0 && Graph.is_connected g then g else go (attempts - 1)
  in
  go 1000

let random_regular prng ~n ~d =
  if d < 1 || d >= n then invalid_arg "Gen.random_regular: bad degree";
  if n * d land 1 = 1 then invalid_arg "Gen.random_regular: n*d must be even";
  (* Pairing model with swap repair: a uniform stub matching is simple only
     with probability ~ exp(-(d^2-1)/4), so instead of rejecting whole
     matchings we fix loops/multi-edges by random double-edge swaps (the
     standard practical generator; the result is approximately uniform,
     which is all the expander workloads need). Restart on the rare repair
     dead-end, and resample until connected. *)
  let stubs = Array.init (n * d) (fun i -> i / d) in
  let rec attempt tries =
    if tries = 0 then failwith "Gen.random_regular: attempt limit reached";
    Prng.shuffle prng stubs;
    let m = n * d / 2 in
    let edges = Array.init m (fun i ->
        let u = stubs.(2 * i) and v = stubs.(2 * i + 1) in
        if u < v then (u, v) else (v, u))
    in
    let seen = Hashtbl.create (2 * m) in
    let count (u, v) = Option.value ~default:0 (Hashtbl.find_opt seen (u, v)) in
    let add e = Hashtbl.replace seen e (count e + 1) in
    let remove e =
      let c = count e in
      if c <= 1 then Hashtbl.remove seen e else Hashtbl.replace seen e (c - 1)
    in
    Array.iter add edges;
    let bad (u, v) = u = v || count (u, v) > 1 in
    let fuel = ref (200 * m) in
    let ok = ref true in
    let rec repair () =
      let bad_idx = ref (-1) in
      Array.iteri (fun i e -> if !bad_idx < 0 && bad e then bad_idx := i) edges;
      if !bad_idx >= 0 then begin
        decr fuel;
        if !fuel <= 0 then ok := false
        else begin
          let i = !bad_idx in
          let j = Prng.int prng m in
          if j <> i then begin
            let u, v = edges.(i) and x, y = edges.(j) in
            (* Swap to (u,x), (v,y), flipping the partner orientation at
               random for symmetry. *)
            let x, y = if Prng.bool prng then (x, y) else (y, x) in
            let e1 = if u < x then (u, x) else (x, u) in
            let e2 = if v < y then (v, y) else (y, v) in
            if u <> x && v <> y && count e1 = 0 && count e2 = 0 then begin
              remove edges.(i);
              remove edges.(j);
              edges.(i) <- e1;
              edges.(j) <- e2;
              add e1;
              add e2
            end
          end;
          repair ()
        end
      end
    in
    repair ();
    if not !ok then attempt (tries - 1)
    else
      let g = Graph.of_unweighted_edges ~n (Array.to_list edges) in
      if Graph.is_connected g then g else attempt (tries - 1)
  in
  attempt 100

let random_connected prng ~n ~extra_edges =
  if n < 2 then invalid_arg "Gen.random_connected: n < 2";
  (* Random recursive tree skeleton, then chords. *)
  let seen = Hashtbl.create (n + extra_edges) in
  let edge_list = ref [] in
  let add u v =
    let u, v = if u < v then (u, v) else (v, u) in
    if u <> v && not (Hashtbl.mem seen (u, v)) then begin
      Hashtbl.add seen (u, v) ();
      edge_list := (u, v) :: !edge_list;
      true
    end
    else false
  in
  for v = 1 to n - 1 do
    ignore (add (Prng.int prng v) v)
  done;
  let budget = ref extra_edges and fuel = ref (20 * (extra_edges + 1)) in
  while !budget > 0 && !fuel > 0 do
    decr fuel;
    if add (Prng.int prng n) (Prng.int prng n) then decr budget
  done;
  Graph.of_unweighted_edges ~n !edge_list

let random_weights prng g ~max_weight =
  if max_weight < 1 then invalid_arg "Gen.random_weights";
  Graph.of_edges ~n:(Graph.n g)
    (List.map
       (fun (u, v, _) -> (u, v, Float.of_int (1 + Prng.int prng max_weight)))
       (Graph.edges g))

let figure2 () =
  (* A=0, B=1, C=2, D=3; S = {A, B, D}; C is the hub every walk passes
     through, so Shortcut(G,S) sends every vertex to C with probability 1 and
     Schur(G,S) is uniform on the other two S-vertices. *)
  Graph.of_unweighted_edges ~n:4 [ (0, 2); (1, 2); (3, 2) ]

type family =
  | Path
  | Cycle
  | Complete
  | Star
  | Grid
  | Binary_tree
  | Lollipop
  | Barbell
  | Erdos_renyi of float
  | Er_log of float
  | Regular of int

let family_of_string s =
  match String.lowercase_ascii s with
  | "path" -> Path
  | "cycle" -> Cycle
  | "complete" | "clique" -> Complete
  | "star" -> Star
  | "grid" -> Grid
  | "btree" | "binary_tree" -> Binary_tree
  | "lollipop" -> Lollipop
  | "barbell" -> Barbell
  | s -> (
      match String.split_on_char ':' s with
      | [ "er"; p ] -> Erdos_renyi (float_of_string p)
      | [ "erlog"; c ] -> Er_log (float_of_string c)
      | [ "regular"; d ] -> Regular (int_of_string d)
      | _ -> invalid_arg ("Gen.family_of_string: unknown family " ^ s))

let family_to_string = function
  | Path -> "path"
  | Cycle -> "cycle"
  | Complete -> "complete"
  | Star -> "star"
  | Grid -> "grid"
  | Binary_tree -> "btree"
  | Lollipop -> "lollipop"
  | Barbell -> "barbell"
  | Erdos_renyi p -> Printf.sprintf "er:%g" p
  | Er_log c -> Printf.sprintf "erlog:%g" c
  | Regular d -> Printf.sprintf "regular:%d" d

let build prng family ~n =
  match family with
  | Path -> path n
  | Cycle -> cycle n
  | Complete -> complete n
  | Star -> star n
  | Grid ->
      let side = max 2 (int_of_float (Float.round (sqrt (float_of_int n)))) in
      grid ~rows:side ~cols:side
  | Binary_tree -> binary_tree n
  | Lollipop ->
      let clique = max 2 (n / 2) in
      lollipop ~clique ~tail:(max 1 (n - clique))
  | Barbell -> barbell (max 2 (n / 2))
  | Erdos_renyi p -> erdos_renyi_connected prng ~n ~p
  | Er_log c ->
      let p = Float.min 1.0 (c *. Float.log (float_of_int n) /. float_of_int n) in
      erdos_renyi_connected prng ~n ~p
  | Regular d ->
      let n = if n * d land 1 = 1 then n + 1 else n in
      random_regular prng ~n ~d
