(** Spanning trees: representation, validation, counting, enumeration.

    A sampled tree is a set of edges of the host graph. [count] implements the
    Matrix–Tree theorem (determinant of a Laplacian minor), which the paper
    cites as the classical starting point; [enumerate] exhaustively lists all
    spanning trees of small graphs — the ground truth for the TV-distance
    experiments (E5). For weighted graphs the target distribution puts mass on
    a tree proportional to the product of its edge weights (footnote 1), which
    [weighted_distribution] computes. *)

type t
(** An immutable set of edges [(u, v)], [u < v]. *)

(** [of_edges ~n edges] builds a candidate tree on host-vertex-count [n].
    Validation of treeness is separate ([is_spanning_tree]). *)
val of_edges : n:int -> (int * int) list -> t

val edges : t -> (int * int) list
val num_edges : t -> int

(** [mem t u v] tests membership (order-insensitive). *)
val mem : t -> int -> int -> bool

(** [is_spanning_tree g t] checks [t] has n-1 edges, all present in [g], and
    connects all of [g]'s vertices. *)
val is_spanning_tree : Graph.t -> t -> bool

(** [equal a b] *)
val equal : t -> t -> bool

(** [compare a b] is a total order usable as a map key. *)
val compare : t -> t -> int

(** [canonical_key t] is a stable string key identifying the tree. *)
val canonical_key : t -> string

(** [weight g t] is the product of the tree's edge weights in [g]. *)
val weight : Graph.t -> t -> float

(** {1 Counting and enumeration} *)

(** [count g] is the number of spanning trees (weighted: sum over trees of
    edge-weight products) by the Matrix–Tree theorem. *)
val count : Graph.t -> float

(** [log_count g] is the natural log of [count g] (robust for large graphs);
    [neg_infinity] if disconnected. *)
val log_count : Graph.t -> float

(** [enumerate g] lists all spanning trees by backtracking over edge subsets
    (with connectivity pruning). Intended for small graphs; @raise
    Invalid_argument if the count exceeds [limit] (default 200_000). *)
val enumerate : ?limit:int -> Graph.t -> t list

(** [index g] pairs [enumerate] with a lookup table: returns the tree list
    and a function mapping a tree to its index (for histogramming samples).
    The target distribution over indexes is [weighted_distribution]. *)
val index : ?limit:int -> Graph.t -> t array * (t -> int)

(** [weighted_distribution g trees] is the distribution proportional to tree
    weight — uniform when [g] is unweighted. *)
val weighted_distribution : Graph.t -> t array -> Cc_util.Dist.t
