type t = {
  n : int;
  adj : (int * float) array array;
  edges : (int * int * float) list; (* u < v, each edge once *)
}

let of_edges ~n edge_list =
  if n <= 0 then invalid_arg "Graph.of_edges: n <= 0";
  let seen = Hashtbl.create (List.length edge_list) in
  let canonical =
    List.map
      (fun (u, v, w) ->
        if u < 0 || u >= n || v < 0 || v >= n then
          invalid_arg "Graph.of_edges: endpoint out of range";
        if u = v then invalid_arg "Graph.of_edges: self-loop";
        if w <= 0.0 || not (Float.is_finite w) then
          invalid_arg "Graph.of_edges: weight must be positive and finite";
        let u, v = if u < v then (u, v) else (v, u) in
        if Hashtbl.mem seen (u, v) then
          invalid_arg "Graph.of_edges: duplicate edge";
        Hashtbl.add seen (u, v) ();
        (u, v, w))
      edge_list
  in
  let buckets = Array.make n [] in
  List.iter
    (fun (u, v, w) ->
      buckets.(u) <- (v, w) :: buckets.(u);
      buckets.(v) <- (u, w) :: buckets.(v))
    canonical;
  let adj =
    Array.map
      (fun l ->
        let a = Array.of_list l in
        Array.sort compare a;
        a)
      buckets
  in
  { n; adj; edges = List.sort compare canonical }

let of_unweighted_edges ~n edge_list =
  of_edges ~n (List.map (fun (u, v) -> (u, v, 1.0)) edge_list)

let of_adjacency_matrix a =
  let n = Cc_linalg.Mat.rows a in
  if Cc_linalg.Mat.cols a <> n then invalid_arg "Graph.of_adjacency_matrix: not square";
  if not (Cc_linalg.Mat.is_symmetric a) then
    invalid_arg "Graph.of_adjacency_matrix: not symmetric";
  let edge_list = ref [] in
  for u = 0 to n - 1 do
    if Cc_linalg.Mat.get a u u <> 0.0 then
      invalid_arg "Graph.of_adjacency_matrix: nonzero diagonal";
    for v = u + 1 to n - 1 do
      let w = Cc_linalg.Mat.get a u v in
      if w < 0.0 then invalid_arg "Graph.of_adjacency_matrix: negative weight";
      if w > 0.0 then edge_list := (u, v, w) :: !edge_list
    done
  done;
  of_edges ~n !edge_list

let n g = g.n
let num_edges g = List.length g.edges
let edges g = g.edges
let neighbors g u = g.adj.(u)
let degree g u = Array.length g.adj.(u)

let weighted_degree g u =
  Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 g.adj.(u)

let edge_weight g u v =
  let arr = g.adj.(u) in
  let rec go i =
    if i >= Array.length arr then 0.0
    else
      let x, w = arr.(i) in
      if x = v then w else go (i + 1)
  in
  go 0

let has_edge g u v = edge_weight g u v > 0.0

let deg_in g u ~members =
  Array.fold_left
    (fun acc (v, _) -> if members.(v) then acc + 1 else acc)
    0 g.adj.(u)

let is_connected g =
  let visited = Array.make g.n false in
  let queue = Queue.create () in
  Queue.add 0 queue;
  visited.(0) <- true;
  let count = ref 1 in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun (v, _) ->
        if not visited.(v) then begin
          visited.(v) <- true;
          incr count;
          Queue.add v queue
        end)
      g.adj.(u)
  done;
  !count = g.n

let total_weight g =
  List.fold_left (fun acc (_, _, w) -> acc +. w) 0.0 g.edges

let adjacency_matrix g =
  let m = Cc_linalg.Mat.create ~rows:g.n ~cols:g.n 0.0 in
  List.iter
    (fun (u, v, w) ->
      Cc_linalg.Mat.set m u v w;
      Cc_linalg.Mat.set m v u w)
    g.edges;
  m

let transition_matrix g =
  Cc_linalg.Mat.init ~rows:g.n ~cols:g.n (fun u v ->
      let d = weighted_degree g u in
      if d = 0.0 then if u = v then 1.0 else 0.0
      else edge_weight g u v /. d)

let laplacian g =
  Cc_linalg.Mat.init ~rows:g.n ~cols:g.n (fun u v ->
      if u = v then weighted_degree g u else -.edge_weight g u v)

let of_laplacian ?(tol = 1e-9) l =
  let n = Cc_linalg.Mat.rows l in
  let edge_list = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let w = -.Cc_linalg.Mat.get l u v in
      if w > tol then edge_list := (u, v, w) :: !edge_list
    done
  done;
  of_edges ~n !edge_list

let effective_resistance g u v =
  if u = v then invalid_arg "Graph.effective_resistance: identical vertices";
  (* Ground at v: R_eff(u,v) = e_u^T (L with row/col v removed)^{-1} e_u. *)
  let keep =
    Array.of_list (List.filter (fun i -> i <> v) (List.init g.n (fun i -> i)))
  in
  let l = laplacian g in
  let reduced = Cc_linalg.Mat.submatrix l ~row_idx:keep ~col_idx:keep in
  let pos = Array.make g.n (-1) in
  Array.iteri (fun i orig -> pos.(orig) <- i) keep;
  let b = Array.make (Array.length keep) 0.0 in
  b.(pos.(u)) <- 1.0;
  let x = Cc_linalg.Solve.solve reduced b in
  x.(pos.(u))

(* FNV-1a 64 over the canonical serialization. [edges] is stored sorted with
   [u < v], so two graphs built from permuted edge lists serialize — and hash
   — identically, while any weight change (printed at full [%.17g] precision)
   lands in the digest. Constants match lib/obs's recorder chain, but the
   implementation is local: lib/graph sits below the observability stack. *)
let fnv_basis = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv64_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let fingerprint g =
  let h = ref (fnv64_string fnv_basis (Printf.sprintf "n %d\n" g.n)) in
  List.iter
    (fun (u, v, w) ->
      h := fnv64_string !h (Printf.sprintf "e %d %d %.17g\n" u v w))
    g.edges;
  Printf.sprintf "fnv64:%016Lx" !h

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" g.n);
  List.iter
    (fun (u, v, w) -> Buffer.add_string buf (Printf.sprintf "e %d %d %.17g\n" u v w))
    g.edges;
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> invalid_arg "Graph.of_string: empty input"
  | first :: rest ->
      let nv =
        try Scanf.sscanf first "n %d" (fun n -> n)
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          invalid_arg "Graph.of_string: expected 'n <count>' header"
      in
      let edge_list =
        List.map
          (fun line ->
            try Scanf.sscanf line "e %d %d %f" (fun u v w -> (u, v, w))
            with Scanf.Scan_failure _ | Failure _ | End_of_file -> (
              try Scanf.sscanf line "e %d %d" (fun u v -> (u, v, 1.0))
              with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                invalid_arg "Graph.of_string: bad edge line"))
          rest
      in
      of_edges ~n:nv edge_list

let pp fmt g =
  Format.fprintf fmt "@[<v>graph on %d vertices, %d edges@," g.n (num_edges g);
  List.iter (fun (u, v, w) -> Format.fprintf fmt "  %d -- %d (%g)@," u v w) g.edges;
  Format.fprintf fmt "@]"
