module Mat = Cc_linalg.Mat

(* Symmetrized walk matrix N = D^{-1/2} A D^{-1/2}: same spectrum as P,
   orthogonal eigenvectors, top eigenvector sqrt(d_i). *)
let symmetrized g =
  let n = Graph.n g in
  Mat.init ~rows:n ~cols:n (fun i j ->
      let w = Graph.edge_weight g i j in
      if w = 0.0 then 0.0
      else w /. sqrt (Graph.weighted_degree g i *. Graph.weighted_degree g j))

let normalize v =
  let norm = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v) in
  if norm = 0.0 then v else Array.map (fun x -> x /. norm) v

let dot a b =
  let acc = ref 0.0 in
  Array.iteri (fun i x -> acc := !acc +. (x *. b.(i))) a;
  !acc

(* Power iteration on [m], deflating the given orthonormal directions; the
   Rayleigh quotient can be negative, so iterate on a shifted matrix
   (m + 2I, eigenvalues in [1,3]) and shift back. *)
let extreme_eigenvalue m ~deflate ~seed ~iters =
  let n = Mat.rows m in
  let prng = Cc_util.Prng.create ~seed in
  let v = ref (normalize (Array.init n (fun _ -> Cc_util.Prng.float prng 2.0 -. 1.0))) in
  let project x =
    List.iter
      (fun d ->
        let c = dot x d in
        Array.iteri (fun i di -> x.(i) <- x.(i) -. (c *. di)) d)
      deflate;
    x
  in
  v := normalize (project !v);
  for _ = 1 to iters do
    let shifted = Mat.mul_vec m !v in
    Array.iteri (fun i x -> shifted.(i) <- x +. (2.0 *. !v.(i))) shifted;
    v := normalize (project shifted)
  done;
  dot !v (Mat.mul_vec m !v) /. dot !v !v

let stationary_direction g =
  normalize (Array.init (Graph.n g) (fun i -> sqrt (Graph.weighted_degree g i)))

let second_eigenvalue ?(iters = 10_000) ?(seed = 1) g =
  if not (Graph.is_connected g) then invalid_arg "Spectral: disconnected graph";
  let m = symmetrized g in
  extreme_eigenvalue m ~deflate:[ stationary_direction g ] ~seed ~iters

let smallest_eigenvalue ?(iters = 10_000) ?(seed = 1) g =
  if not (Graph.is_connected g) then invalid_arg "Spectral: disconnected graph";
  (* Power iteration on -N finds the most negative eigenvalue of N. *)
  let m = Mat.scale (-1.0) (symmetrized g) in
  -.extreme_eigenvalue m ~deflate:[] ~seed ~iters

let gap ?iters ?seed g =
  let l2 = second_eigenvalue ?iters ?seed g in
  (1.0 -. l2) /. 2.0

let mixing_time_bound ?iters ?seed g ~eps =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Spectral.mixing_time_bound: eps";
  let n = Graph.n g in
  let total = 2.0 *. Graph.total_weight g in
  let pi_min =
    Array.fold_left Float.min infinity
      (Array.init n (fun i -> Graph.weighted_degree g i /. total))
  in
  let gp = gap ?iters ?seed g in
  if gp <= 0.0 then infinity
  else Float.log (float_of_int n /. (eps *. pi_min)) /. gp
