type t = { n : int; sorted : (int * int) array }

let of_edges ~n edge_list =
  let canon =
    List.map (fun (u, v) -> if u < v then (u, v) else (v, u)) edge_list
  in
  let arr = Array.of_list canon in
  Array.sort compare arr;
  { n; sorted = arr }

let edges t = Array.to_list t.sorted
let num_edges t = Array.length t.sorted

let mem t u v =
  let key = if u < v then (u, v) else (v, u) in
  let lo = ref 0 and hi = ref (Array.length t.sorted - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = compare t.sorted.(mid) key in
    if c = 0 then found := true
    else if c < 0 then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let compare_trees a b = compare (a.n, a.sorted) (b.n, b.sorted)
let compare = compare_trees
let equal a b = compare_trees a b = 0

let canonical_key t =
  let buf = Buffer.create (8 * Array.length t.sorted) in
  Array.iter (fun (u, v) -> Buffer.add_string buf (Printf.sprintf "%d-%d;" u v)) t.sorted;
  Buffer.contents buf

let is_spanning_tree g t =
  let n = Graph.n g in
  t.n = n
  && Array.length t.sorted = n - 1
  && Array.for_all (fun (u, v) -> Graph.has_edge g u v) t.sorted
  &&
  (* n-1 edges + connected => tree. Union-find connectivity. *)
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let acyclic = ref true in
  Array.iter
    (fun (u, v) ->
      let ru = find u and rv = find v in
      if ru = rv then acyclic := false else parent.(ru) <- rv)
    t.sorted;
  !acyclic

let weight g t =
  Array.fold_left (fun acc (u, v) -> acc *. Graph.edge_weight g u v) 1.0 t.sorted

let log_count g =
  let n = Graph.n g in
  if n = 1 then 0.0
  else
    let l = Graph.laplacian g in
    let keep = Array.init (n - 1) (fun i -> i) in
    let minor = Cc_linalg.Mat.submatrix l ~row_idx:keep ~col_idx:keep in
    match Cc_linalg.Solve.log_determinant minor with
    | 0, _ -> neg_infinity
    | s, logdet ->
        assert (s > 0);
        logdet

let count g =
  let lc = log_count g in
  if lc = neg_infinity then 0.0 else Float.exp lc

let enumerate ?(limit = 200_000) g =
  let n = Graph.n g in
  let all_edges = Array.of_list (Graph.edges g) in
  let m = Array.length all_edges in
  let need = n - 1 in
  let results = ref [] in
  let count_found = ref 0 in
  (* Backtracking with union-find over a chosen prefix; choose edges in index
     order so each subset is produced once. State is copied per branch (m is
     small when enumeration is feasible). *)
  let rec go idx chosen parent taken =
    if taken = need then begin
      incr count_found;
      if !count_found > limit then
        invalid_arg "Tree.enumerate: spanning tree count exceeds limit";
      results := of_edges ~n (List.rev chosen) :: !results
    end
    else if idx < m && m - idx >= need - taken then begin
      let u, v, _ = all_edges.(idx) in
      let rec find p i = if p.(i) = i then i else find p p.(i) in
      let ru = find parent u and rv = find parent v in
      if ru <> rv then begin
        let parent' = Array.copy parent in
        parent'.(ru) <- rv;
        go (idx + 1) ((u, v) :: chosen) parent' (taken + 1)
      end;
      go (idx + 1) chosen parent taken
    end
  in
  go 0 [] (Array.init n (fun i -> i)) 0;
  !results

let index ?limit g =
  let trees = Array.of_list (enumerate ?limit g) in
  Array.sort compare_trees trees;
  let table = Hashtbl.create (Array.length trees) in
  Array.iteri (fun i t -> Hashtbl.add table (canonical_key t) i) trees;
  let lookup t =
    match Hashtbl.find_opt table (canonical_key t) with
    | Some i -> i
    | None -> invalid_arg "Tree.index: tree is not a spanning tree of this graph"
  in
  (trees, lookup)

let weighted_distribution g trees =
  Cc_util.Dist.of_weights (Array.map (fun t -> weight g t) trees)
