(** Graph generators for the benchmark workloads.

    These cover every family the paper's analysis mentions: Erdős–Rényi
    G(n,p) with p >= c log n / n and d-regular expanders (Corollary 2,
    O(n log n) cover time), the lollipop graph (the Θ(mn) cover-time worst
    case motivating the whole construction), plus standard shapes used in
    tests (paths, cycles, grids, complete graphs, trees). *)

(** [path n] is the path 0-1-...-(n-1). *)
val path : int -> Graph.t

(** [cycle n], n >= 3. *)
val cycle : int -> Graph.t

(** [complete n] is K_n. *)
val complete : int -> Graph.t

(** [star n] has center 0 and leaves 1..n-1. *)
val star : int -> Graph.t

(** [grid ~rows ~cols] is the rows x cols grid graph. *)
val grid : rows:int -> cols:int -> Graph.t

(** [binary_tree n] is the complete-binary-tree-shaped graph on n vertices
    (heap indexing). *)
val binary_tree : int -> Graph.t

(** [lollipop ~clique ~tail] is K_clique with a path of [tail] extra vertices
    attached — cover time Θ(clique^2 · tail); with tail ≈ clique ≈ n/2 this
    realizes the Θ(mn) = Θ(n^3) worst case. *)
val lollipop : clique:int -> tail:int -> Graph.t

(** [barbell k] is two K_k cliques joined by a single edge. *)
val barbell : int -> Graph.t

(** [erdos_renyi prng ~n ~p] is G(n,p). *)
val erdos_renyi : Cc_util.Prng.t -> n:int -> p:float -> Graph.t

(** [erdos_renyi_connected prng ~n ~p] resamples until connected
    (@raise Failure after 1000 attempts). *)
val erdos_renyi_connected : Cc_util.Prng.t -> n:int -> p:float -> Graph.t

(** [random_regular prng ~n ~d] samples a simple d-regular graph via the
    pairing model with rejection; [n * d] must be even.
    @raise Failure if 1000 attempts all produce collisions. *)
val random_regular : Cc_util.Prng.t -> n:int -> d:int -> Graph.t

(** [random_connected prng ~n ~extra_edges] is a uniform random spanning tree
    skeleton plus [extra_edges] random chords: always connected, used by
    property tests. *)
val random_connected : Cc_util.Prng.t -> n:int -> extra_edges:int -> Graph.t

(** [random_weights prng g ~max_weight] reweights each edge of [g] with a
    uniform integer weight in [1, max_weight] (footnote 1: integer weights
    bounded by a polynomial). *)
val random_weights : Cc_util.Prng.t -> Graph.t -> max_weight:int -> Graph.t

(** [figure2 ()] is the 4-vertex worked example of Figure 2 of the paper:
    vertices A=0, B=1, C=2, D=3; edges A-C, B-C, D-C (a star centered at C).
    Used by bench E8 which checks Schur(G, {A,B,D}) and Shortcut(G, {A,B,D})
    against the transition probabilities printed in the figure. *)
val figure2 : unit -> Graph.t

(** Named families for the CLI and benches. *)
type family =
  | Path
  | Cycle
  | Complete
  | Star
  | Grid
  | Binary_tree
  | Lollipop
  | Barbell
  | Erdos_renyi of float (* p *)
  | Er_log of float (* p = c log n / n *)
  | Regular of int (* degree *)

val family_of_string : string -> family
val family_to_string : family -> string

(** [build prng family ~n] instantiates a family at size ~n (families with
    structural constraints may round n; the result reports its true size). *)
val build : Cc_util.Prng.t -> family -> n:int -> Graph.t
