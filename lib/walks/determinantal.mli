(** Exact spanning-tree sampling by the determinantal chain rule.

    The uniform (weighted) spanning-tree distribution is determinantal: an
    edge e belongs to the random tree with probability
    [w_e * effective_resistance(e)] (its leverage score), and conditioning on
    inclusion/exclusion corresponds to contracting/deleting the edge. This
    module samples trees exactly by walking the edges in a fixed order and
    flipping each conditional coin — a third exact reference sampler that,
    unlike enumeration, scales to mid-size graphs, so the distributed
    sampler's {e edge marginals} can be validated where the full tree
    distribution is out of reach (test suite + bench A2).

    Runtime is O(m n^3) from one Laplacian solve per edge; fine for the
    simulator's n <= a few hundred. *)

(** [leverage g u v] = [w(u,v) * R_eff(u,v)] — the probability that edge
    (u,v) appears in the random spanning tree.
    @raise Invalid_argument if the edge does not exist. *)
val leverage : Cc_graph.Graph.t -> int -> int -> float

(** [marginals g] lists every edge with its leverage score. The scores of a
    connected graph sum to n - 1 (Foster's theorem) — checked in tests. *)
val marginals : Cc_graph.Graph.t -> ((int * int) * float) list

(** [sample_tree g prng] draws an exactly (weighted-)uniform spanning
    tree. *)
val sample_tree : Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t

(** [empirical_marginals ~trials sampler g] estimates edge marginals of any
    tree sampler, keyed like [marginals] — the comparison helper used to
    validate samplers at sizes where tree enumeration is infeasible. *)
val empirical_marginals :
  trials:int ->
  (Cc_graph.Graph.t -> Cc_graph.Tree.t) ->
  Cc_graph.Graph.t ->
  ((int * int) * float) list

(** [max_marginal_gap g ~trials sampler] = the l-infinity distance between
    [marginals g] and the sampler's empirical marginals. *)
val max_marginal_gap :
  Cc_graph.Graph.t ->
  trials:int ->
  (Cc_graph.Graph.t -> Cc_graph.Tree.t) ->
  float
