(** Sequential top-down random-walk filling (Sections 3.1.1 and 3.1.2).

    Instead of stepping a walk forward, fix the start, sample the endpoint
    from [P^l[start, *]], then recursively fill in midpoints: between
    consecutive partial-walk entries at distance [delta], a midpoint [w] is
    drawn with probability proportional to
    [P^(delta/2)[a, w] * P^(delta/2)[w, b]]  (Formula 1).

    [sample_walk] is the exact algorithm of Lemma 1; [sample_truncated] adds
    the per-level truncation of Lemma 2, producing a walk that ends at time
    tau = min(l, first time the rho-th distinct vertex is seen). These are
    the references the Congested Clique implementation (Cc_sampler) is
    validated against. *)

type partial_walk = {
  gap_exp : int;  (** consecutive entries are endpoints of 2^gap_exp-walks *)
  verts : int array;  (** the materialized entries, chronological *)
}

(** [levels_for ~len] is log2 of the power of two >= len — the number of
    filling levels needed for a target length [len]. *)
val levels_for : len:int -> int

(** [initial_walk prng powers ~start ~levels] is W_1 = (w_0, w_l) with
    [l = 2^levels] and [w_l ~ P^l[start, *]] (Algorithm 1, line 4).
    [powers.(j)] must be [P^(2^j)]. *)
val initial_walk :
  Cc_util.Prng.t -> Cc_linalg.Mat.t array -> start:int -> levels:int -> partial_walk

(** [fill_level prng powers w] inserts one midpoint between every consecutive
    pair (one level of the top-down process); halves [gap_exp].
    @raise Invalid_argument if [gap_exp = 0]. *)
val fill_level :
  Cc_util.Prng.t -> Cc_linalg.Mat.t array -> partial_walk -> partial_walk

(** [fill_level_truncated prng powers w ~rho] additionally truncates the
    result at the first occurrence of the rho-th distinct vertex
    (Section 3.1.2). *)
val fill_level_truncated :
  Cc_util.Prng.t ->
  Cc_linalg.Mat.t array ->
  partial_walk ->
  rho:int ->
  partial_walk

(** [sample_walk g prng ~start ~len] runs the full Lemma 1 algorithm and
    returns the complete walk [w_0 .. w_len]. [len] must be a positive power
    of two. *)
val sample_walk :
  Cc_graph.Graph.t -> Cc_util.Prng.t -> start:int -> len:int -> int array

(** [sample_truncated g prng ~start ~target_len ~rho ?max_material ()] runs
    the Lemma 2 algorithm: the returned walk ends at
    tau = min(target_len, first occurrence of the rho-th distinct vertex).
    [target_len] is rounded up to a power of two. [max_material] (default
    4_000_000) caps the materialized walk length as a memory guard.
    @raise Failure if the cap is exceeded. *)
val sample_truncated :
  Cc_graph.Graph.t ->
  Cc_util.Prng.t ->
  start:int ->
  target_len:int ->
  rho:int ->
  ?max_material:int ->
  unit ->
  int array

(** [sample_truncated_matrix prng ~trans ~start ~target_len ~rho] is
    [sample_truncated] driven directly by a transition matrix rather than a
    graph — the form later phases need (the phase graph is a Schur
    complement given as a matrix). [?powers] supplies a precomputed
    [Mat.power_table trans] (length at least [levels_for target_len + 1]) so
    prepared plans can reuse one table across many draws; the caller
    guarantees it belongs to [trans]. *)
val sample_truncated_matrix :
  Cc_util.Prng.t ->
  trans:Cc_linalg.Mat.t ->
  start:int ->
  target_len:int ->
  rho:int ->
  ?powers:Cc_linalg.Mat.t array ->
  ?max_material:int ->
  unit ->
  int array

(** [midpoint_weights powers ~gap_exp ~a ~b] is the unnormalized Formula 1
    weight vector for a midpoint between [a] and [b] at gap [2^gap_exp];
    exposed for the distributed implementation and for tests. *)
val midpoint_weights :
  Cc_linalg.Mat.t array -> gap_exp:int -> a:int -> b:int -> float array
