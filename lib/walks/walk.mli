(** Sequential random walks on weighted graphs.

    A walk on a weighted graph picks each transition proportional to edge
    weight (footnote 2 of the paper). These primitives provide the ground
    truth the distributed algorithms are validated against, plus the
    cover-time measurements of bench E9. *)

(** [step g prng u] takes one transition from [u].
    @raise Invalid_argument if [u] has no neighbors. *)
val step : Cc_graph.Graph.t -> Cc_util.Prng.t -> int -> int

(** [walk g prng ~start ~len] is the vertex sequence [w_0 .. w_len]
    (length [len + 1], [w_0 = start]). *)
val walk : Cc_graph.Graph.t -> Cc_util.Prng.t -> start:int -> len:int -> int array

(** [first_visit_edges walk_seq] maps the Aldous–Broder rule over an explicit
    walk: for every vertex other than [walk_seq.(0)] that appears, the edge
    used at its first visit, as [(predecessor, vertex)] pairs in order of
    first visit. *)
val first_visit_edges : int array -> (int * int) list

(** [distinct_count walk_seq] is the number of distinct vertices. *)
val distinct_count : int array -> int

(** [truncate_at_distinct walk_seq ~rho] cuts the walk at the first position
    where the [rho]-th distinct vertex appears (inclusive); returns the walk
    unchanged if it never reaches [rho] distinct vertices. This is the
    truncation rule of Section 3.1.2. *)
val truncate_at_distinct : int array -> rho:int -> int array

(** [cover_time g prng ~start] walks until all vertices are visited and
    returns the number of steps. *)
val cover_time : Cc_graph.Graph.t -> Cc_util.Prng.t -> start:int -> int

(** [time_to_distinct g prng ~start ~rho] walks until [rho] distinct vertices
    (including [start]) have been visited; returns the number of steps — the
    stopping time T of Phase 1. *)
val time_to_distinct : Cc_graph.Graph.t -> Cc_util.Prng.t -> start:int -> rho:int -> int

(** [mean_cover_time g prng ~trials] averages [cover_time] over random trials
    (start vertex 0). *)
val mean_cover_time : Cc_graph.Graph.t -> Cc_util.Prng.t -> trials:int -> float

(** [stationary g] is the stationary distribution (weighted degree over total)
    of the walk on a connected [g]. *)
val stationary : Cc_graph.Graph.t -> Cc_util.Dist.t

(** [endpoint_distribution g ~start ~len] is the exact distribution of
    [w_len] via matrix powering — used to validate samplers. *)
val endpoint_distribution : Cc_graph.Graph.t -> start:int -> len:int -> Cc_util.Dist.t
