(** Wilson's algorithm: uniform spanning trees via loop-erased random walks.

    Faster than Aldous–Broder on many graphs (expected time = mean hitting
    time); cited by the paper as the other classical walk-based sampler and
    used as a second baseline in benches E3/E5 and as an independent check
    that two exact samplers agree with the Matrix–Tree distribution. *)

(** [sample g prng ~root] returns the tree and the total number of walk steps
    taken (including erased loops). [g] must be connected. *)
val sample :
  Cc_graph.Graph.t -> Cc_util.Prng.t -> root:int -> Cc_graph.Tree.t * int

(** [sample_tree g prng] is [sample] rooted at 0, discarding the step
    count. *)
val sample_tree : Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t

(** [sample_biased g prng] is a {e deliberately wrong} sampler: it rejects
    trees containing the lexicographically least edge of [g] (up to three
    redraws), deflating that edge's marginal from its leverage [p] to about
    [p^4]. It exists as the negative fixture for the statistical audit plane
    ({!Cc_audit.Audit}): an auditor that accepts it is broken. Only the
    returned tree is reported to the audit sink. *)
val sample_biased : Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t
