module Graph = Cc_graph.Graph
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Mat = Cc_linalg.Mat

type partial_walk = { gap_exp : int; verts : int array }

let levels_for ~len =
  if len <= 0 then invalid_arg "Topdown.levels_for: len <= 0";
  let rec go exp cap = if cap >= len then exp else go (exp + 1) (cap * 2) in
  go 0 1

let midpoint_weights powers ~gap_exp ~a ~b =
  if gap_exp < 1 || gap_exp > Array.length powers - 1 then
    invalid_arg "Topdown.midpoint_weights: gap_exp out of range";
  let half = powers.(gap_exp - 1) in
  let n = Mat.rows half in
  Array.init n (fun w -> Mat.get half a w *. Mat.get half w b)

let initial_walk prng powers ~start ~levels =
  if levels < 0 || levels > Array.length powers - 1 then
    invalid_arg "Topdown.initial_walk: levels out of range";
  let endpoint = Dist.sample_weights (Mat.row powers.(levels) start) prng in
  { gap_exp = levels; verts = [| start; endpoint |] }

let fill_level prng powers w =
  if w.gap_exp = 0 then invalid_arg "Topdown.fill_level: walk already complete";
  let len = Array.length w.verts in
  let out = Array.make ((2 * len) - 1) 0 in
  for i = 0 to len - 1 do
    out.(2 * i) <- w.verts.(i)
  done;
  for i = 0 to len - 2 do
    let a = w.verts.(i) and b = w.verts.(i + 1) in
    let weights = midpoint_weights powers ~gap_exp:w.gap_exp ~a ~b in
    out.((2 * i) + 1) <- Dist.sample_weights weights prng
  done;
  { gap_exp = w.gap_exp - 1; verts = out }

let fill_level_truncated prng powers w ~rho =
  let filled = fill_level prng powers w in
  { filled with verts = Walk.truncate_at_distinct filled.verts ~rho }

let power_table_for g ~levels =
  Mat.power_table (Graph.transition_matrix g) ~max_exp:levels

let sample_walk g prng ~start ~len =
  if len <= 0 || len land (len - 1) <> 0 then
    invalid_arg "Topdown.sample_walk: len must be a positive power of two";
  let levels = levels_for ~len in
  let powers = power_table_for g ~levels in
  let rec go w = if w.gap_exp = 0 then w.verts else go (fill_level prng powers w) in
  go (initial_walk prng powers ~start ~levels)

let sample_truncated_matrix prng ~trans ~start ~target_len ~rho ?powers
    ?(max_material = 4_000_000) () =
  if target_len <= 0 then
    invalid_arg "Topdown.sample_truncated_matrix: target_len <= 0";
  let levels = levels_for ~len:target_len in
  let powers =
    match powers with
    | Some p ->
        if Array.length p < levels + 1 then
          invalid_arg "Topdown.sample_truncated_matrix: powers table too short";
        p
    | None -> Mat.power_table trans ~max_exp:levels
  in
  let rec go w =
    if Array.length w.verts > max_material then
      failwith "Topdown.sample_truncated: materialized walk exceeds cap";
    if w.gap_exp = 0 then w.verts
    else go (fill_level_truncated prng powers w ~rho)
  in
  go (initial_walk prng powers ~start ~levels)

let sample_truncated g prng ~start ~target_len ~rho ?max_material () =
  sample_truncated_matrix prng ~trans:(Graph.transition_matrix g) ~start
    ~target_len ~rho ?max_material ()
