module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Prng = Cc_util.Prng

let leverage g u v =
  let w = Graph.edge_weight g u v in
  if w <= 0.0 then invalid_arg "Determinantal.leverage: no such edge";
  w *. Graph.effective_resistance g u v

let marginals g =
  List.map (fun (u, v, _) -> ((u, v), leverage g u v)) (Graph.edges g)

(* Union-find over original vertices; supernodes are class representatives. *)
type uf = { parent : int array }

let uf_create n = { parent = Array.init n (fun i -> i) }

let rec uf_find uf i =
  if uf.parent.(i) = i then i
  else begin
    uf.parent.(i) <- uf_find uf uf.parent.(i);
    uf.parent.(i)
  end

let uf_union uf i j = uf.parent.(uf_find uf i) <- uf_find uf j

let sample_tree g prng =
  if not (Graph.is_connected g) then
    invalid_arg "Determinantal.sample_tree: disconnected";
  let n = Graph.n g in
  let uf = uf_create n in
  (* Remaining original edges, as a mutable list; the contracted graph is
     rebuilt on supernodes for each conditional (exactness over speed). *)
  let remaining = ref (Graph.edges g) in
  let chosen = ref [] in
  let contracted_graph () =
    (* Relabel supernodes compactly. *)
    let reps = Hashtbl.create 16 in
    let fresh = ref 0 in
    let id r =
      match Hashtbl.find_opt reps r with
      | Some i -> i
      | None ->
          let i = !fresh in
          incr fresh;
          Hashtbl.add reps r i;
          i
    in
    let weight_acc = Hashtbl.create 32 in
    List.iter
      (fun (u, v, w) ->
        let ru = id (uf_find uf u) and rv = id (uf_find uf v) in
        if ru <> rv then begin
          let key = if ru < rv then (ru, rv) else (rv, ru) in
          Hashtbl.replace weight_acc key
            (w +. Option.value ~default:0.0 (Hashtbl.find_opt weight_acc key))
        end)
      !remaining;
    let edges =
      Hashtbl.fold (fun (a, b) w acc -> (a, b, w) :: acc) weight_acc []
    in
    let size = max 1 !fresh in
    ( Graph.of_edges ~n:size edges,
      fun orig -> id (uf_find uf orig) )
  in
  List.iter
    (fun (u, v, w) ->
      if uf_find uf u = uf_find uf v then
        (* Both endpoints already connected by chosen edges: conditional
           inclusion probability is 0; just delete. *)
        remaining := List.filter (fun e -> e <> (u, v, w)) !remaining
      else begin
        let cg, translate = contracted_graph () in
        let p = w *. Graph.effective_resistance cg (translate u) (translate v) in
        remaining := List.filter (fun e -> e <> (u, v, w)) !remaining;
        if Prng.float prng 1.0 < p then begin
          chosen := (u, v) :: !chosen;
          uf_union uf u v
        end
      end)
    (Graph.edges g);
  let tree = Tree.of_edges ~n !chosen in
  Cc_audit.Audit.observe_sink g tree;
  tree

let empirical_marginals ~trials sampler g =
  if trials <= 0 then invalid_arg "Determinantal.empirical_marginals";
  let counts = Hashtbl.create 32 in
  List.iter (fun (u, v, _) -> Hashtbl.add counts (u, v) 0) (Graph.edges g);
  for _ = 1 to trials do
    let t = sampler g in
    List.iter
      (fun (u, v) ->
        Hashtbl.replace counts (u, v) (1 + Hashtbl.find counts (u, v)))
      (Tree.edges t)
  done;
  List.map
    (fun (u, v, _) ->
      ((u, v), float_of_int (Hashtbl.find counts (u, v)) /. float_of_int trials))
    (Graph.edges g)

let max_marginal_gap g ~trials sampler =
  let exact = marginals g in
  let empirical = empirical_marginals ~trials sampler g in
  List.fold_left2
    (fun acc (_, p) (_, q) -> Float.max acc (Float.abs (p -. q)))
    0.0 exact empirical
