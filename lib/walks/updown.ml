module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist

let bfs_tree g =
  let n = Graph.n g in
  if not (Graph.is_connected g) then invalid_arg "Updown.bfs_tree: disconnected";
  let visited = Array.make n false in
  visited.(0) <- true;
  let queue = Queue.create () in
  Queue.add 0 queue;
  let edges = ref [] in
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Array.iter
      (fun (v, _) ->
        if not visited.(v) then begin
          visited.(v) <- true;
          edges := (u, v) :: !edges;
          Queue.add v queue
        end)
      (Graph.neighbors g u)
  done;
  Tree.of_edges ~n !edges

(* Component labels of the forest T - e. *)
let split_components g tree (eu, ev) =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let bfs start mark =
    let queue = Queue.create () in
    Queue.add start queue;
    label.(start) <- mark;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Array.iter
        (fun (v, _) ->
          let is_removed_edge =
            (u = eu && v = ev) || (u = ev && v = eu)
          in
          if (not is_removed_edge) && label.(v) < 0 && Tree.mem tree u v then begin
            label.(v) <- mark;
            Queue.add v queue
          end)
        (Graph.neighbors g u)
    done
  in
  bfs eu 0;
  bfs ev 1;
  label

let step g prng tree =
  let edges = Array.of_list (Tree.edges tree) in
  let removed = Prng.choose prng edges in
  let label = split_components g tree removed in
  (* Cut edges of G between the two components, weighted. *)
  let cut = ref [] in
  List.iter
    (fun (u, v, w) -> if label.(u) <> label.(v) then cut := (u, v, w) :: !cut)
    (Graph.edges g);
  let cut = Array.of_list !cut in
  let weights = Array.map (fun (_, _, w) -> w) cut in
  let u, v, _ = cut.(Dist.sample_weights weights prng) in
  let kept = List.filter (fun e -> e <> removed) (Tree.edges tree) in
  Tree.of_edges ~n:(Graph.n g) ((u, v) :: kept)

let sample g prng ~steps ~init =
  if not (Tree.is_spanning_tree g init) then
    invalid_arg "Updown.sample: init is not a spanning tree";
  let t = ref init in
  for _ = 1 to steps do
    t := step g prng !t
  done;
  !t

let default_steps g =
  let m = Graph.num_edges g in
  int_of_float (Float.ceil (4.0 *. float_of_int m *. Float.log (float_of_int (m + 1))))

(* Only the final chain state is a sample; intermediate [step]/[sample]
   states are not reported to the audit sink. *)
let sample_tree g prng =
  let tree = sample g prng ~steps:(default_steps g) ~init:(bfs_tree g) in
  Cc_audit.Audit.observe_sink g tree;
  tree
