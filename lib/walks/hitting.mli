(** Exact hitting and commute times via linear solves.

    H(u,v) = expected steps of a walk from u to first reach v. Wilson's
    algorithm runs in mean hitting time; commute times equal
    [2 W R_eff(u,v)] (Chandra et al., cited by the paper for expander cover
    times) — both identities are checked in the test suite and used by the
    baseline benches. *)

(** [to_target g v] is the vector of hitting times H(., v): solve
    [(I - P restricted off v) h = 1]. *)
val to_target : Cc_graph.Graph.t -> int -> float array

(** [matrix g] is the full H(u,v) matrix (n solves). *)
val matrix : Cc_graph.Graph.t -> Cc_linalg.Mat.t

(** [commute g u v] = H(u,v) + H(v,u) = 2 W(G) R_eff(u,v), where W(G) is
    the total edge weight. *)
val commute : Cc_graph.Graph.t -> int -> int -> float

(** [mean_hitting_time g] is the stationarily-averaged hitting time
    [sum_{u,v} pi(u) pi(v) H(u,v)] — Wilson's expected runtime scale. *)
val mean_hitting_time : Cc_graph.Graph.t -> float
