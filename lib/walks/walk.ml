module Graph = Cc_graph.Graph
module Prng = Cc_util.Prng
module Dist = Cc_util.Dist
module Mat = Cc_linalg.Mat

let step g prng u =
  let nbrs = Graph.neighbors g u in
  if Array.length nbrs = 0 then invalid_arg "Walk.step: isolated vertex";
  let total = Graph.weighted_degree g u in
  let x = Prng.float prng total in
  let rec go i acc =
    if i = Array.length nbrs - 1 then fst nbrs.(i)
    else
      let v, w = nbrs.(i) in
      let acc = acc +. w in
      if x < acc then v else go (i + 1) acc
  in
  go 0 0.0

let walk g prng ~start ~len =
  if len < 0 then invalid_arg "Walk.walk: negative length";
  let out = Array.make (len + 1) start in
  for i = 1 to len do
    out.(i) <- step g prng out.(i - 1)
  done;
  out

let first_visit_edges walk_seq =
  if Array.length walk_seq = 0 then invalid_arg "Walk.first_visit_edges: empty";
  let visited = Hashtbl.create 64 in
  Hashtbl.add visited walk_seq.(0) ();
  let acc = ref [] in
  for i = 1 to Array.length walk_seq - 1 do
    let v = walk_seq.(i) in
    if not (Hashtbl.mem visited v) then begin
      Hashtbl.add visited v ();
      acc := (walk_seq.(i - 1), v) :: !acc
    end
  done;
  List.rev !acc

let distinct_count walk_seq =
  let seen = Hashtbl.create 64 in
  Array.iter (fun v -> if not (Hashtbl.mem seen v) then Hashtbl.add seen v ()) walk_seq;
  Hashtbl.length seen

let truncate_at_distinct walk_seq ~rho =
  if rho <= 0 then invalid_arg "Walk.truncate_at_distinct: rho <= 0";
  let seen = Hashtbl.create 64 in
  let cut = ref (-1) in
  (try
     Array.iteri
       (fun i v ->
         if not (Hashtbl.mem seen v) then begin
           Hashtbl.add seen v ();
           if Hashtbl.length seen = rho then begin
             cut := i;
             raise Exit
           end
         end)
       walk_seq
   with Exit -> ());
  if !cut < 0 then walk_seq else Array.sub walk_seq 0 (!cut + 1)

let cover_time g prng ~start =
  let n = Graph.n g in
  let visited = Array.make n false in
  visited.(start) <- true;
  let remaining = ref (n - 1) in
  let current = ref start and steps = ref 0 in
  while !remaining > 0 do
    current := step g prng !current;
    incr steps;
    if not visited.(!current) then begin
      visited.(!current) <- true;
      decr remaining
    end
  done;
  !steps

let time_to_distinct g prng ~start ~rho =
  if rho <= 0 then invalid_arg "Walk.time_to_distinct: rho <= 0";
  if rho > Graph.n g then invalid_arg "Walk.time_to_distinct: rho > n";
  if rho = 1 then 0
  else begin
    let visited = Array.make (Graph.n g) false in
    visited.(start) <- true;
    let count = ref 1 and current = ref start and steps = ref 0 in
    while !count < rho do
      current := step g prng !current;
      incr steps;
      if not visited.(!current) then begin
        visited.(!current) <- true;
        incr count
      end
    done;
    !steps
  end

let mean_cover_time g prng ~trials =
  if trials <= 0 then invalid_arg "Walk.mean_cover_time: trials <= 0";
  let acc = ref 0.0 in
  for _ = 1 to trials do
    acc := !acc +. float_of_int (cover_time g prng ~start:0)
  done;
  !acc /. float_of_int trials

let stationary g =
  Dist.of_weights
    (Array.init (Graph.n g) (fun u -> Graph.weighted_degree g u))

let endpoint_distribution g ~start ~len =
  let p = Graph.transition_matrix g in
  let pk = Mat.power p len in
  Dist.of_weights (Mat.row pk start)
