(** The down-up (basis-exchange) Markov chain on spanning trees.

    The paper's conclusion points to the MCMC approach of Anari, Liu, Oveis
    Gharan, Vinzant and Vuong [3] — the up-down walk on the spanning-tree
    matroid — as the natural alternative route to distributed sampling. This
    module implements the sequential chain as an extension/baseline:

    one step from a tree T picks a uniformly random tree edge e, removes it
    (splitting T into components A and B), and re-inserts an edge drawn from
    the cut (A,B) with probability proportional to its weight. The chain's
    stationary distribution is exactly the (weighted) uniform distribution
    over spanning trees, and by [3] it mixes in O(m log m) steps.

    Used by bench A2 (samplers ablation) and cross-validated against
    Aldous-Broder/Wilson/Matrix-Tree in the test suite. *)

(** [step g prng tree] performs one down-up exchange. *)
val step : Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t -> Cc_graph.Tree.t

(** [sample g prng ~steps ~init] runs the chain for [steps] exchanges from
    [init] (which must be a spanning tree of [g]). *)
val sample :
  Cc_graph.Graph.t ->
  Cc_util.Prng.t ->
  steps:int ->
  init:Cc_graph.Tree.t ->
  Cc_graph.Tree.t

(** [sample_tree g prng] starts from a (deterministic) BFS tree and runs the
    default budget of ceil(4 m log(m + 1)) steps. *)
val sample_tree : Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t

(** [default_steps g] is the budget [sample_tree] uses. *)
val default_steps : Cc_graph.Graph.t -> int

(** [bfs_tree g] is the deterministic breadth-first spanning tree from
    vertex 0 — the chain's canonical starting state. *)
val bfs_tree : Cc_graph.Graph.t -> Cc_graph.Tree.t
