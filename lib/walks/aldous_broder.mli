(** The Aldous–Broder exact uniform spanning tree sampler.

    Run a random walk from an arbitrary start until it covers the graph; the
    first-visit edge of every non-start vertex forms a uniformly random
    spanning tree (weighted graphs: probability proportional to the product
    of edge weights). This is the paper's foundational primitive and the
    sequential baseline of benches E3/E5. *)

(** [sample g prng ~start] returns the tree and the number of walk steps
    taken (the realized cover time). [g] must be connected. *)
val sample :
  Cc_graph.Graph.t -> Cc_util.Prng.t -> start:int -> Cc_graph.Tree.t * int

(** [sample_tree g prng] is [sample] from vertex 0, discarding the step
    count. *)
val sample_tree : Cc_graph.Graph.t -> Cc_util.Prng.t -> Cc_graph.Tree.t
