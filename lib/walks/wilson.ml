module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree

let sample g prng ~root =
  let n = Graph.n g in
  if not (Graph.is_connected g) then
    invalid_arg "Wilson.sample: graph must be connected";
  let in_tree = Array.make n false in
  in_tree.(root) <- true;
  (* next.(v) is the successor of v along the current loop-erased path; the
     cycle-popping view keeps only the last exit from each vertex. *)
  let next = Array.make n (-1) in
  let steps = ref 0 in
  for v = 0 to n - 1 do
    if not in_tree.(v) then begin
      (* Random walk from v until the tree is hit, recording last exits. *)
      let u = ref v in
      while not in_tree.(!u) do
        let w = Walk.step g prng !u in
        incr steps;
        next.(!u) <- w;
        u := w
      done;
      (* Retrace the loop-erased path and add it to the tree. *)
      let u = ref v in
      while not in_tree.(!u) do
        in_tree.(!u) <- true;
        u := next.(!u)
      done
    end
  done;
  let tree_edges = ref [] in
  for v = 0 to n - 1 do
    if v <> root && next.(v) >= 0 && in_tree.(v) then
      tree_edges := (v, next.(v)) :: !tree_edges
  done;
  (Tree.of_edges ~n !tree_edges, !steps)

let sample_tree g prng = fst (sample g prng ~root:0)
