module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree

(* The unaudited core. [sample] wraps it with a single report to the audit
   sink; [sample_biased] redraws through the core so only the tree it finally
   returns is audited. *)
let sample_raw g prng ~root =
  let n = Graph.n g in
  if not (Graph.is_connected g) then
    invalid_arg "Wilson.sample: graph must be connected";
  let in_tree = Array.make n false in
  in_tree.(root) <- true;
  (* next.(v) is the successor of v along the current loop-erased path; the
     cycle-popping view keeps only the last exit from each vertex. *)
  let next = Array.make n (-1) in
  let steps = ref 0 in
  for v = 0 to n - 1 do
    if not in_tree.(v) then begin
      (* Random walk from v until the tree is hit, recording last exits. *)
      let u = ref v in
      while not in_tree.(!u) do
        let w = Walk.step g prng !u in
        incr steps;
        next.(!u) <- w;
        u := w
      done;
      (* Retrace the loop-erased path and add it to the tree. *)
      let u = ref v in
      while not in_tree.(!u) do
        in_tree.(!u) <- true;
        u := next.(!u)
      done
    end
  done;
  let tree_edges = ref [] in
  for v = 0 to n - 1 do
    if v <> root && next.(v) >= 0 && in_tree.(v) then
      tree_edges := (v, next.(v)) :: !tree_edges
  done;
  (Tree.of_edges ~n !tree_edges, !steps)

let sample g prng ~root =
  let ((tree, _) as r) = sample_raw g prng ~root in
  Cc_audit.Audit.observe_sink g tree;
  r

let sample_tree g prng = fst (sample g prng ~root:0)

let sample_biased g prng =
  match Graph.edges g with
  | [] -> invalid_arg "Wilson.sample_biased: graph has no edges"
  | (u0, v0, _) :: _ ->
      (* Rejection against the lexicographically least edge: redraw (up to
         three times) whenever the tree contains it, deflating its marginal
         from p to roughly p^4 — far outside any honest gate. *)
      let rec go k =
        let tree, _ = sample_raw g prng ~root:0 in
        if k = 0 || not (Tree.mem tree u0 v0) then tree else go (k - 1)
      in
      let tree = go 3 in
      Cc_audit.Audit.observe_sink g tree;
      tree
