module Graph = Cc_graph.Graph
module Mat = Cc_linalg.Mat
module Solve = Cc_linalg.Solve

let to_target g v =
  let n = Graph.n g in
  if v < 0 || v >= n then invalid_arg "Hitting.to_target: bad vertex";
  if not (Graph.is_connected g) then invalid_arg "Hitting.to_target: disconnected";
  let p = Graph.transition_matrix g in
  let keep = Array.of_list (List.filter (fun i -> i <> v) (List.init n (fun i -> i))) in
  let system =
    Mat.init ~rows:(n - 1) ~cols:(n - 1) (fun i j ->
        (if i = j then 1.0 else 0.0) -. Mat.get p keep.(i) keep.(j))
  in
  let rhs = Array.make (n - 1) 1.0 in
  let h = Solve.solve system rhs in
  let out = Array.make n 0.0 in
  Array.iteri (fun i orig -> out.(orig) <- h.(i)) keep;
  out

let matrix g =
  let n = Graph.n g in
  let out = Mat.create ~rows:n ~cols:n 0.0 in
  for v = 0 to n - 1 do
    let h = to_target g v in
    for u = 0 to n - 1 do
      Mat.set out u v h.(u)
    done
  done;
  out

let commute g u v =
  let h1 = (to_target g v).(u) in
  let h2 = (to_target g u).(v) in
  h1 +. h2

let mean_hitting_time g =
  let n = Graph.n g in
  let total = 2.0 *. Graph.total_weight g in
  let pi = Array.init n (fun i -> Graph.weighted_degree g i /. total) in
  let h = matrix g in
  let acc = ref 0.0 in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      acc := !acc +. (pi.(u) *. pi.(v) *. Mat.get h u v)
    done
  done;
  !acc
