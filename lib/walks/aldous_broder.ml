module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree

let sample g prng ~start =
  let n = Graph.n g in
  if not (Graph.is_connected g) then
    invalid_arg "Aldous_broder.sample: graph must be connected";
  let visited = Array.make n false in
  visited.(start) <- true;
  let remaining = ref (n - 1) in
  let current = ref start and steps = ref 0 in
  let tree_edges = ref [] in
  while !remaining > 0 do
    let next = Walk.step g prng !current in
    incr steps;
    if not visited.(next) then begin
      visited.(next) <- true;
      decr remaining;
      tree_edges := (!current, next) :: !tree_edges
    end;
    current := next
  done;
  let tree = Tree.of_edges ~n !tree_edges in
  Cc_audit.Audit.observe_sink g tree;
  (tree, !steps)

let sample_tree g prng = fst (sample g prng ~start:0)
