module Graph = Cc_graph.Graph
module Json = Cc_obs.Json

type method_ = Cc | Sequential | Doubling

let method_name = function
  | Cc -> "cc"
  | Sequential -> "sequential"
  | Doubling -> "doubling"

let method_of_string s =
  match String.lowercase_ascii s with
  | "cc" -> Ok Cc
  | "sequential" -> Ok Sequential
  | "doubling" -> Ok Doubling
  | m -> Error (Printf.sprintf "unknown method %S (cc|sequential|doubling)" m)

type request = {
  id : string option;
  graph : Graph.t;
  k : int;
  seed : int;
  meth : method_;
}

let ( let* ) = Result.bind

let graph_of_json v =
  match v with
  | Json.String s -> (
      try Ok (Graph.of_string s)
      with Invalid_argument m | Failure m -> Error ("bad graph: " ^ m))
  | Json.Obj _ -> (
      let* n =
        match Option.bind (Json.member "n" v) Json.to_float_opt with
        | Some f when Float.is_integer f -> Ok (int_of_float f)
        | _ -> Error "graph object needs an integer \"n\""
      in
      let* edges =
        match Option.bind (Json.member "edges" v) Json.to_list_opt with
        | Some l -> Ok l
        | None -> Error "graph object needs an \"edges\" list"
      in
      let parse_edge e =
        match Json.to_list_opt e with
        | Some ([ _; _ ] as uv) | Some ([ _; _; _ ] as uv) -> (
            match List.map Json.to_float_opt uv with
            | [ Some u; Some v ]
              when Float.is_integer u && Float.is_integer v ->
                Ok (int_of_float u, int_of_float v, 1.0)
            | [ Some u; Some v; Some w ]
              when Float.is_integer u && Float.is_integer v ->
                Ok (int_of_float u, int_of_float v, w)
            | _ -> Error "edge must be [u, v] or [u, v, w] with integer endpoints")
        | _ -> Error "edge must be [u, v] or [u, v, w]"
      in
      let* edges =
        List.fold_left
          (fun acc e ->
            let* acc = acc in
            let* e = parse_edge e in
            Ok (e :: acc))
          (Ok []) edges
      in
      try Ok (Graph.of_edges ~n (List.rev edges))
      with Invalid_argument m -> Error ("bad graph: " ^ m))
  | _ -> Error "\"graph\" must be a string or an object"

let int_field v key ~default =
  match Json.member key v with
  | None -> Ok default
  | Some j -> (
      match Json.to_float_opt j with
      | Some f when Float.is_integer f -> Ok (int_of_float f)
      | _ -> Error (Printf.sprintf "%S must be an integer" key))

let parse_request line =
  let* v =
    match Json.of_string (String.trim line) with
    | Ok v -> Ok v
    | Error m -> Error ("bad request JSON: " ^ m)
  in
  let* () = match v with Json.Obj _ -> Ok () | _ -> Error "request must be a JSON object" in
  let id = Option.bind (Json.member "id" v) Json.to_string_opt in
  let* graph =
    match Json.member "graph" v with
    | None -> Error "request needs a \"graph\""
    | Some g -> graph_of_json g
  in
  let* k = int_field v "k" ~default:1 in
  let* () = if k >= 1 then Ok () else Error "\"k\" must be >= 1" in
  let* seed = int_field v "seed" ~default:0 in
  let* meth =
    match Json.member "method" v with
    | None -> Ok Cc
    | Some j -> (
        match Json.to_string_opt j with
        | Some s -> method_of_string s
        | None -> Error "\"method\" must be a string")
  in
  Ok { id; graph; k; seed; meth }

let request_line ?id ~graph ~k ~seed ~meth () =
  let fields =
    [
      ("graph", Json.String (Graph.to_string graph));
      ("k", Json.Int k);
      ("seed", Json.Int seed);
      ("method", Json.String (method_name meth));
    ]
  in
  let fields =
    match id with Some i -> ("id", Json.String i) :: fields | None -> fields
  in
  Json.to_string (Json.Obj fields) ^ "\n"

(* --- response lines --- *)

let with_id id fields =
  match id with Some i -> ("id", Json.String i) :: fields | None -> fields

let line fields = Json.to_string (Json.Obj fields) ^ "\n"

let tree_line ?id ~index ~header ~edges () =
  line
    (("type", Json.String "tree")
    :: with_id id
         [
           ("index", Json.Int index);
           ("header", Json.String header);
           ( "edges",
             Json.List
               (List.map
                  (fun (u, v) -> Json.List [ Json.Int u; Json.Int v ])
                  edges) );
         ])

let done_line ?id ~k ~cache_hit ~digest ~rounds () =
  line
    (("type", Json.String "done")
    :: with_id id
         [
           ("k", Json.Int k);
           ("cache", Json.String (if cache_hit then "hit" else "miss"));
           ("digest", Json.String digest);
           ("rounds", Json.float_opt rounds);
         ])

let error_line ?id message =
  line (("type", Json.String "error") :: with_id id [ ("message", Json.String message) ])

(* --- client-side parsing --- *)

type response =
  | Tree of { id : string option; index : int; header : string;
              edges : (int * int) list }
  | Done of { id : string option; k : int; cache_hit : bool;
              digest : string; rounds : float }
  | Error of { id : string option; message : string }

let parse_response s =
  let* v =
    match Json.of_string (String.trim s) with
    | Ok v -> Ok v
    | Error m -> Error ("bad response JSON: " ^ m)
  in
  let id = Option.bind (Json.member "id" v) Json.to_string_opt in
  let str key =
    match Option.bind (Json.member key v) Json.to_string_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "response missing %S" key)
  in
  let int key =
    match Option.bind (Json.member key v) Json.to_float_opt with
    | Some f when Float.is_integer f -> Ok (int_of_float f)
    | _ -> Error (Printf.sprintf "response missing integer %S" key)
  in
  let* ty = str "type" in
  match ty with
  | "tree" ->
      let* index = int "index" in
      let* header = str "header" in
      let* edges =
        match Option.bind (Json.member "edges" v) Json.to_list_opt with
        | None -> Error "tree response missing \"edges\""
        | Some l ->
            List.fold_left
              (fun acc e ->
                let* acc = acc in
                match Option.map (List.map Json.to_float_opt) (Json.to_list_opt e) with
                | Some [ Some u; Some v ] ->
                    Ok ((int_of_float u, int_of_float v) :: acc)
                | _ -> Error "tree edge must be [u, v]")
              (Ok []) l
            |> Result.map List.rev
      in
      Ok (Tree { id; index; header; edges })
  | "done" ->
      let* k = int "k" in
      let* cache = str "cache" in
      let* digest = str "digest" in
      let rounds =
        match Option.bind (Json.member "rounds" v) Json.to_float_opt with
        | Some r -> r
        | None -> 0.0
      in
      Ok (Done { id; k; cache_hit = String.equal cache "hit"; digest; rounds })
  | "error" ->
      let* message = str "message" in
      Ok (Error { id; message })
  | ty -> Stdlib.Error (Printf.sprintf "unknown response type %S" ty)
