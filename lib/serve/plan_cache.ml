module Metrics = Cc_obs.Metrics

type 'a entry = { value : 'a; mutable last_used : int }

type 'a t = {
  cap : int;
  table : (string, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~cap =
  if cap < 1 then invalid_arg "Plan_cache.create: cap < 1";
  {
    cap;
    table = Hashtbl.create (2 * cap);
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let cap t = t.cap
let length t = Hashtbl.length t.table
let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key e acc ->
        match acc with
        | Some (_, best) when best <= e.last_used -> acc
        | _ -> Some (key, e.last_used))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      t.evictions <- t.evictions + 1;
      Metrics.incr "server.cache.evict"

let find_or_add t key ~make =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table key with
  | Some e ->
      e.last_used <- t.tick;
      t.hits <- t.hits + 1;
      Metrics.incr "server.cache.hit";
      (e.value, true)
  | None ->
      t.misses <- t.misses + 1;
      Metrics.incr "server.cache.miss";
      let value = make () in
      if Hashtbl.length t.table >= t.cap then evict_lru t;
      Hashtbl.add t.table key { value; last_used = t.tick };
      (value, false)

let stats t = (t.hits, t.misses, t.evictions)
