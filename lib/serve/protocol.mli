(** The ccserve wire protocol: newline-delimited JSON over a Unix-domain
    socket.

    One request per line:

    {v
    {"id": "r1", "graph": "n 4\ne 0 1 1\n...", "k": 2, "seed": 7,
     "method": "cc"}
    v}

    - [graph] (required): either a string in the {!Cc_graph.Graph.of_string}
      line format, or an object [{"n": 4, "edges": [[0,1], [1,2,2.5], ...]}]
      where each edge is [[u, v]] (weight 1) or [[u, v, w]].
    - [k] (default 1): number of trees to draw.
    - [seed] (default 0): master seed; tree [i] is drawn from the [i]-th
      sequential {!Cc_util.Prng.split} of the master stream, so tree [i] is
      independent of [k] (the [cctree sample --count] contract).
    - [method] (default ["cc"]): ["cc"], ["sequential"], or ["doubling"].
    - [id] (optional): echoed verbatim on every response line.

    The server answers with [k] tree lines followed by one done line — or
    one error line, after which the connection stays usable:

    {v
    {"type":"tree","id":"r1","index":0,"header":"# tree 1: ...","edges":[[0,1],...]}
    {"type":"done","id":"r1","k":2,"cache":"hit","digest":"fnv64:...","rounds":42}
    {"type":"error","id":"r1","message":"..."}
    v}

    [header] carries the exact preformatted header bytes cctree would print
    for that tree (so a client can reproduce one-shot [cctree] stdout
    byte-for-byte without re-deriving float formatting), [digest] is the
    request's flight-recorder chain digest over the Net events it booked,
    and [cache] is ["hit"] or ["miss"] for the plan lookup. *)

type method_ = Cc | Sequential | Doubling

val method_name : method_ -> string

type request = {
  id : string option;
  graph : Cc_graph.Graph.t;
  k : int;
  seed : int;
  meth : method_;
}

(** [parse_request line] parses one request line. Errors are human-readable
    messages suitable for an error response. *)
val parse_request : string -> (request, string) result

(** [request_line ?id ~graph ~k ~seed ~meth ()] serializes one request
    (graph in the {!Cc_graph.Graph.to_string} line format), trailing
    newline included — the [cctree sample --connect] client side. *)
val request_line :
  ?id:string ->
  graph:Cc_graph.Graph.t ->
  k:int ->
  seed:int ->
  meth:method_ ->
  unit ->
  string

(** {1 Response lines} — each includes the trailing newline. *)

val tree_line :
  ?id:string ->
  index:int ->
  header:string ->
  edges:(int * int) list ->
  unit ->
  string

val done_line :
  ?id:string ->
  k:int ->
  cache_hit:bool ->
  digest:string ->
  rounds:float ->
  unit ->
  string

val error_line : ?id:string -> string -> string

(** {1 Client-side parsing} *)

type response =
  | Tree of { id : string option; index : int; header : string;
              edges : (int * int) list }
  | Done of { id : string option; k : int; cache_hit : bool;
              digest : string; rounds : float }
  | Error of { id : string option; message : string }

val parse_response : string -> (response, string) result
