(** Bounded LRU cache for prepared sampling plans.

    ccserve keys plans by the canonical graph digest
    ({!Cc_graph.Graph.fingerprint}) plus the sampling method, so repeated
    requests for the same graph reuse the graph-only factorization
    ({!Cc_sampler.Sampler.prepare}) and pay only the walk + matching phases.
    The cache is a plain polymorphic map with last-used ticks — capacity is
    small (plans hold O(n^2 log) floats), so O(cap) eviction scans are
    irrelevant next to a single matrix multiply.

    Every lookup updates the metrics registry: [server.cache.hit],
    [server.cache.miss], [server.cache.evict]. *)

type 'a t

(** [create ~cap] builds an empty cache holding at most [cap] entries.
    @raise Invalid_argument if [cap < 1]. *)
val create : cap:int -> 'a t

val cap : 'a t -> int
val length : 'a t -> int
val mem : 'a t -> string -> bool

(** [find_or_add t key ~make] returns [(value, hit)]: the cached value with
    [hit = true], or [make ()] — inserted, evicting the least-recently-used
    entry when full — with [hit = false]. [make] is not called on a hit. *)
val find_or_add : 'a t -> string -> make:(unit -> 'a) -> 'a * bool

(** [stats t] is cumulative [(hits, misses, evictions)]. *)
val stats : 'a t -> int * int * int
