module Graph = Cc_graph.Graph
module Tree = Cc_graph.Tree
module Prng = Cc_util.Prng
module Net = Cc_clique.Net
module Sampler = Cc_sampler.Sampler
module Sequential = Cc_sampler.Sequential
module Doubling = Cc_doubling.Doubling
module Metrics = Cc_obs.Metrics
module Journal = Cc_obs.Journal
module Recorder = Cc_obs.Recorder

let src = Logs.Src.create "cc.serve" ~doc:"ccserve daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  sock : string;
  cache_cap : int;
  max_requests : int option;
  journal : Journal.t option;
  on_net : (Net.t -> unit -> unit) option;
}

let default_config ~sock =
  { sock; cache_cap = 8; max_requests = None; journal = None; on_net = None }

(* A cached plan. The three samplers expose the same prepare/draw shape but
   distinct plan types; the cache stores the sum. *)
type plan_entry =
  | P_cc of Sampler.plan
  | P_seq of Sequential.plan
  | P_doub of Doubling.plan

type job = {
  req : Protocol.request;
  plan : plan_entry;
  cache_hit : bool;
  net : Net.t;
  recorder : Recorder.t;
  teardown : unit -> unit;  (* transport shutdown, when one was installed *)
  master : Prng.t;  (* tree i draws from the i-th sequential split *)
  mutable drawn : int;
  started : float;
}

type conn = {
  cid : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;  (* pending response bytes *)
  mutable queue : Protocol.request list;  (* parsed, FIFO (reversed) *)
  mutable job : job option;
  mutable alive : bool;
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  cache : plan_entry Plan_cache.t;
  mutable conns : conn list;
  mutable next_cid : int;
  mutable rr : int;  (* round-robin cursor over active jobs *)
  mutable stop : bool;
  mutable drained : bool;
  mutable served : int;
}

let max_line_bytes = 8 * 1024 * 1024

let journal_record t ?worker ?cause kind =
  match t.config.journal with
  | None -> ()
  | Some j -> Journal.record j ?worker ?cause kind

(* --- socket lifecycle --- *)

(* A socket file with nobody accepting is a stale leftover from a crashed
   server: probe-connect distinguishes the two. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then failwith (Printf.sprintf "Server.create: %s already serving" path);
    (try Unix.unlink path with Unix.Unix_error _ -> ())
  end

let create config =
  claim_socket config.sock;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX config.sock);
     Unix.listen fd 16;
     Unix.set_nonblock fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      config;
      listen_fd = fd;
      cache = Plan_cache.create ~cap:config.cache_cap;
      conns = [];
      next_cid = 0;
      rr = 0;
      stop = false;
      drained = false;
      served = 0;
    }
  in
  journal_record t "serve_start" ~cause:config.sock;
  Log.info (fun m -> m "listening on %s" config.sock);
  t

let sock_path t = t.config.sock
let served t = t.served
let connections t = List.length (List.filter (fun c -> c.alive) t.conns)
let cache_stats t = Plan_cache.stats t.cache
let request_stop t = t.stop <- true

(* --- request execution --- *)

let plan_key req =
  Protocol.method_name req.Protocol.meth ^ ":" ^ Graph.fingerprint req.Protocol.graph

let make_plan (req : Protocol.request) =
  match req.meth with
  | Protocol.Cc -> P_cc (Sampler.prepare req.graph)
  | Protocol.Sequential -> P_seq (Sequential.prepare req.graph)
  | Protocol.Doubling ->
      P_doub (Doubling.prepare req.graph ~tau0:(Graph.n req.graph))

let start_job t conn (req : Protocol.request) =
  let plan, cache_hit = Plan_cache.find_or_add t.cache (plan_key req) ~make:(fun () -> make_plan req) in
  let n = Graph.n req.graph in
  let net = Net.create ~n in
  let recorder = Recorder.create ~machines:n () in
  ignore (Net.attach_recorder net recorder);
  let teardown =
    match t.config.on_net with Some f -> f net | None -> fun () -> ()
  in
  Metrics.incr "server.requests";
  journal_record t "serve_request" ~worker:conn.cid
    ~cause:
      (Printf.sprintf "%s k=%d %s" (Protocol.method_name req.meth) req.k
         (if cache_hit then "hit" else "miss"));
  conn.job <-
    Some
      {
        req;
        plan;
        cache_hit;
        net;
        recorder;
        teardown;
        master = Prng.create ~seed:req.seed;
        drawn = 0;
        started = Unix.gettimeofday ();
      }

(* Draw tree [job.drawn]; headers are the exact bytes [cctree sample
   --count] prints for tree index+1, so clients can reproduce one-shot
   stdout verbatim. *)
let draw_tree job =
  let i = job.drawn in
  let prng = Prng.split job.master in
  match job.plan with
  | P_cc plan ->
      let r = Sampler.draw plan job.net prng in
      let header =
        Printf.sprintf "# tree %d: %d phases, %.0f rounds, walk length %d\n"
          (i + 1) r.Sampler.phases r.Sampler.rounds r.Sampler.walk_total
      in
      (header, Tree.edges r.Sampler.tree)
  | P_seq plan ->
      let r = Sequential.draw plan prng in
      let header =
        Printf.sprintf "# tree %d: %d phases, walk length %d\n" (i + 1)
          r.Sequential.phases r.Sequential.walk_total
      in
      (header, Tree.edges r.Sequential.tree)
  | P_doub plan ->
      let tree, steps = Doubling.draw plan job.net prng in
      let header = Printf.sprintf "# tree %d: %d walk steps\n" (i + 1) steps in
      (header, Tree.edges tree)

let finish_job t conn job =
  (try job.teardown () with _ -> ());
  let ms = 1000.0 *. (Unix.gettimeofday () -. job.started) in
  Metrics.observe "server.request_ms" ms;
  conn.out <-
    conn.out
    ^ Protocol.done_line ?id:job.req.Protocol.id ~k:job.req.Protocol.k
        ~cache_hit:job.cache_hit
        ~digest:(Recorder.digest_hex job.recorder)
        ~rounds:(Net.rounds job.net) ();
  conn.job <- None;
  t.served <- t.served + 1;
  journal_record t "serve_done" ~worker:conn.cid
    ~cause:(Printf.sprintf "%.1fms" ms);
  match t.config.max_requests with
  | Some n when t.served >= n -> t.stop <- true
  | _ -> ()

let fail_job t conn job message =
  (try job.teardown () with _ -> ());
  conn.out <- conn.out ^ Protocol.error_line ?id:job.req.Protocol.id message;
  conn.job <- None;
  t.served <- t.served + 1;
  journal_record t "serve_error" ~worker:conn.cid ~cause:message

(* --- input handling --- *)

let enqueue_line t conn line =
  if String.trim line = "" then ()
  else
    match Protocol.parse_request line with
    | Ok req -> conn.queue <- req :: conn.queue
    | Error m ->
        conn.out <- conn.out ^ Protocol.error_line m;
        journal_record t "serve_error" ~worker:conn.cid ~cause:m

let split_lines t conn =
  let s = Buffer.contents conn.inbuf in
  let rec go start =
    match String.index_from_opt s start '\n' with
    | Some nl ->
        enqueue_line t conn (String.sub s start (nl - start));
        go (nl + 1)
    | None ->
        Buffer.clear conn.inbuf;
        Buffer.add_substring conn.inbuf s start (String.length s - start)
  in
  go 0

let close_conn t conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    journal_record t "serve_close" ~worker:conn.cid
  end

let read_conn t conn =
  let chunk = Bytes.create 65536 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 ->
      (* EOF: serve what was already queued, then the flush path closes. *)
      if conn.out = "" && conn.job = None && conn.queue = [] then
        close_conn t conn
  | len ->
      Buffer.add_subbytes conn.inbuf chunk 0 len;
      split_lines t conn;
      if Buffer.length conn.inbuf > max_line_bytes then begin
        conn.out <- conn.out ^ Protocol.error_line "request line too long";
        close_conn t conn
      end
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> close_conn t conn

let flush_conn t conn =
  if conn.alive && conn.out <> "" then
    match
      Unix.write_substring conn.fd conn.out 0 (String.length conn.out)
    with
    | n ->
        conn.out <- String.sub conn.out n (String.length conn.out - n)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> close_conn t conn

let accept_conns t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        Unix.set_nonblock fd;
        let cid = t.next_cid in
        t.next_cid <- cid + 1;
        t.conns <-
          t.conns
          @ [
              {
                cid;
                fd;
                inbuf = Buffer.create 256;
                out = "";
                queue = [];
                job = None;
                alive = true;
              };
            ];
        journal_record t "serve_accept" ~worker:cid;
        go ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

(* --- the loop --- *)

let active_jobs t = List.filter (fun c -> c.alive && c.job <> None) t.conns

let step t =
  if t.drained then false
  else begin
    let live = List.filter (fun c -> c.alive) t.conns in
    let busy =
      active_jobs t <> []
      || List.exists (fun c -> c.out <> "" || (c.queue <> [] && not t.stop)) live
    in
    let readable = List.map (fun c -> c.fd) live in
    let readable = if t.stop then readable else t.listen_fd :: readable in
    let writable =
      List.filter_map (fun c -> if c.out <> "" then Some c.fd else None) live
    in
    let timeout = if busy then 0.0 else 0.05 in
    let rd, _, _ =
      match Unix.select readable writable [] timeout with
      | r -> r
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if (not t.stop) && List.mem t.listen_fd rd then accept_conns t;
    List.iter
      (fun c -> if c.alive && List.mem c.fd rd then read_conn t c)
      t.conns;
    (* Start queued requests (skipped while draining). *)
    if not t.stop then
      List.iter
        (fun c ->
          if c.alive && c.job = None then
            match List.rev c.queue with
            | [] -> ()
            | req :: rest -> (
                c.queue <- List.rev rest;
                try start_job t c req
                with
                | Invalid_argument m | Failure m ->
                    c.out <- c.out ^ Protocol.error_line ?id:req.Protocol.id m;
                    t.served <- t.served + 1;
                    journal_record t "serve_error" ~worker:c.cid ~cause:m))
        t.conns;
    (* One tree for one job, round-robin across connections. *)
    (match active_jobs t with
    | [] -> ()
    | jobs ->
        let c = List.nth jobs (t.rr mod List.length jobs) in
        t.rr <- t.rr + 1;
        let job = Option.get c.job in
        (match draw_tree job with
        | header, edges ->
            job.drawn <- job.drawn + 1;
            c.out <-
              c.out
              ^ Protocol.tree_line ?id:job.req.Protocol.id
                  ~index:(job.drawn - 1) ~header ~edges ();
            if job.drawn >= job.req.Protocol.k then finish_job t c job
        | exception (Invalid_argument m | Failure m) -> fail_job t c job m
        | exception e -> fail_job t c job (Printexc.to_string e)));
    let queued =
      List.fold_left
        (fun acc c -> if c.alive then acc + List.length c.queue else acc)
        0 t.conns
    in
    Metrics.set_gauge "server.queue_depth" (float_of_int queued);
    Metrics.set_gauge "server.connections" (float_of_int (connections t));
    List.iter (fun c -> flush_conn t c) t.conns;
    t.conns <- List.filter (fun c -> c.alive) t.conns;
    if
      t.stop
      && List.for_all (fun c -> c.out = "" && c.job = None) t.conns
    then begin
      journal_record t "serve_drain";
      List.iter (fun c -> close_conn t c) t.conns;
      t.conns <- [];
      (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
      (try Unix.unlink t.config.sock with Unix.Unix_error _ -> ());
      journal_record t "serve_stop";
      Log.info (fun m -> m "drained after %d request(s)" t.served);
      t.drained <- true
    end;
    not t.drained
  end

let run t = while step t do () done
