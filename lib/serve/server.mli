(** The ccserve daemon core: a single-threaded accept/serve loop over a
    Unix-domain socket, speaking {!Protocol} lines.

    Clients submit sampling requests; the server prepares (or reuses, via
    {!Plan_cache}) the graph-only factorization and streams tree responses
    back. Concurrency is cooperative: each {!step} makes one pass of
    accept + read + draw-one-tree + flush, drawing at most one tree per
    step and rotating round-robin across connections with active jobs, so
    a large request cannot starve a small one.

    Observability: every request books its Net events into a private flight
    recorder whose chain digest is returned on the done line (equal to a
    one-shot [cctree sample --count] run at the same seed); the metrics
    registry gains [server.requests], [server.cache.{hit,miss,evict}],
    [server.queue_depth], [server.connections] and the [server.request_ms]
    latency histogram; lifecycle events (start, accept, request, done,
    error, drain, stop) are appended to the optional journal.

    The loop never raises for client misbehavior: malformed or torn request
    lines produce a structured error response and the connection survives;
    an oversized line (no newline within 8 MiB) or a broken pipe closes
    only that connection. *)

type config = {
  sock : string;  (** Unix-domain socket path. *)
  cache_cap : int;  (** plan-cache capacity (entries). *)
  max_requests : int option;
      (** stop (drain) after this many completed requests — for tests and
          the CI smoke job. *)
  journal : Cc_obs.Journal.t option;
  on_net : (Cc_clique.Net.t -> unit -> unit) option;
      (** called on each request's freshly created net before any draw —
          the hook [ccserve --transport mpproc] uses to install a
          supervised transport; the returned thunk tears it down when the
          request completes. *)
}

val default_config : sock:string -> config

type t

(** [create config] binds and listens on [config.sock]. A stale socket file
    (left by a crashed server) is detected by a probe connect and removed;
    a live one raises.
    @raise Failure if another server is accepting on the path, or on bind
    errors. *)
val create : config -> t

(** [step t] runs one loop pass and returns [false] once the server has
    fully drained after a stop request (listen socket closed, socket file
    unlinked). It is safe to keep calling after that. *)
val step : t -> bool

(** [run t] loops {!step} until drained. *)
val run : t -> unit

(** [request_stop t] begins a graceful drain: stop accepting connections
    and starting queued requests, finish active jobs, flush, close. Safe
    to call from a signal handler. *)
val request_stop : t -> unit

val sock_path : t -> string

(** [served t] is the number of completed (done or error) requests. *)
val served : t -> int

val connections : t -> int
val cache_stats : t -> int * int * int  (** (hits, misses, evictions) *)
